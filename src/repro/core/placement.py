"""Granule placement strategies (paper §2 and §3.5).

A placement strategy answers two questions about a transaction that
accesses ``NU`` entities out of ``dbsize``, when the database is
covered by ``ltot`` equal granules:

* ``lock_count(nu)`` — how many locks (``LUi``) must it set?  This is
  what the probabilistic conflict engine and the overhead accounting
  consume.  Random placement returns the *expected* value (a float),
  exactly as the paper's mean-value formula does.
* ``granules(nu, rng)`` — which concrete granule ids does it touch?
  Only the explicit lock-table engine needs this; each strategy
  materialises a set whose size distribution matches its
  ``lock_count`` model.
"""

import math

from repro.analytic.yao import expected_granules_touched


class BestPlacement:
    """Entities packed into the fewest granules (sequential access).

    ``LU = ceil(NU * ltot / dbsize)`` — the number of locks is
    proportional to the fraction of the database accessed.  The
    materialised set is a contiguous wrap-around run of granules
    starting at a random position, mimicking a range scan.
    """

    name = "best"

    def __init__(self, dbsize, ltot):
        self.dbsize = dbsize
        self.ltot = ltot

    def lock_count(self, nu):
        """``ceil(nu * ltot / dbsize)`` (at least 1 for nu >= 1)."""
        if nu <= 0:
            return 0
        return math.ceil(nu * self.ltot / self.dbsize)

    def granules(self, nu, rng):
        """A contiguous run of ``lock_count(nu)`` granules (wraps)."""
        count = self.lock_count(nu)
        start = rng.randrange(self.ltot)
        return [(start + i) % self.ltot for i in range(count)]


class WorstPlacement:
    """Every entity in a different granule (fully scattered access).

    ``LU = min(NU, ltot)`` — a transaction larger than the granule
    count must lock the entire database.
    """

    name = "worst"

    def __init__(self, dbsize, ltot):
        self.dbsize = dbsize
        self.ltot = ltot

    def lock_count(self, nu):
        """``min(nu, ltot)``."""
        return min(nu, self.ltot)

    def granules(self, nu, rng):
        """``lock_count(nu)`` distinct granules chosen uniformly."""
        count = self.lock_count(nu)
        if count >= self.ltot:
            return list(range(self.ltot))
        return rng.sample(range(self.ltot), count)


class RandomPlacement:
    """Entities chosen uniformly at random (Yao's formula).

    ``lock_count`` returns Yao's expectation (a float — the paper's
    mean-value usage).  ``granules`` samples ``NU`` entities without
    replacement and maps them onto granules, so the materialised set's
    size is *exactly* Yao-distributed.
    """

    name = "random"

    def __init__(self, dbsize, ltot):
        self.dbsize = dbsize
        self.ltot = ltot
        self._granule_size = dbsize / ltot

    def lock_count(self, nu):
        """Yao's expected number of granules touched."""
        if nu <= 0:
            return 0.0
        return expected_granules_touched(self.dbsize, self.ltot, nu)

    def granules(self, nu, rng):
        """Granules of ``nu`` entities sampled without replacement."""
        if nu >= self.dbsize:
            return list(range(self.ltot))
        entities = rng.sample(range(self.dbsize), nu)
        # Balanced split: the first (dbsize % ltot) granules hold one
        # extra entity, consistent with the Yao computation.
        small = self.dbsize // self.ltot
        n_large = self.dbsize - small * self.ltot
        boundary = n_large * (small + 1)
        touched = set()
        for entity in entities:
            if entity < boundary:
                touched.add(entity // (small + 1))
            else:
                touched.add(n_large + (entity - boundary) // small)
        return sorted(touched)


class SkewedPlacement:
    """Hot-spot access: granules drawn from a Zipf-like distribution.

    The paper assumes uniformly random access; real workloads
    concentrate on hot data, which raises conflict rates at any
    granularity.  This strategy draws each transaction's granules
    without replacement from a discrete power-law over granule ids
    (weight of granule ``g`` proportional to ``1 / (g + 1)**theta``),
    so granule 0 is the hottest.  ``theta = 0`` degenerates to uniform
    random placement over granules.

    ``lock_count`` is the materialised set's size distributionally, so
    for the probabilistic engine we return ``min(nu, ltot)``-capped
    Yao as an approximation; the engine of record for skew studies is
    the explicit lock table, which uses the exact materialised sets.
    """

    name = "skewed"

    def __init__(self, dbsize, ltot, theta=0.8):
        if theta < 0:
            raise ValueError("theta must be >= 0")
        self.dbsize = dbsize
        self.ltot = ltot
        self.theta = theta
        weights = [1.0 / (g + 1) ** theta for g in range(ltot)]
        total = sum(weights)
        self._cumulative = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)

    def lock_count(self, nu):
        """Yao's uniform expectation (approximation; see class doc)."""
        if nu <= 0:
            return 0.0
        return expected_granules_touched(self.dbsize, self.ltot, nu)

    def _draw(self, rng):
        import bisect

        return bisect.bisect_left(self._cumulative, rng.random())

    def granules(self, nu, rng):
        """Up to ``min(nu, ltot)`` distinct granules, hot ones likelier."""
        want = min(nu, self.ltot)
        if want >= self.ltot:
            return list(range(self.ltot))
        chosen = set()
        # Rejection sampling without replacement; the tail switches to
        # a scan so pathological skews still terminate.
        attempts = 0
        while len(chosen) < want and attempts < 20 * want:
            chosen.add(min(self._draw(rng), self.ltot - 1))
            attempts += 1
        granule = 0
        while len(chosen) < want:
            chosen.add(granule)
            granule += 1
        return sorted(chosen)


def make_placement(params):
    """Build the placement strategy described by *params* (via the registry)."""
    from repro.policies import resolve

    return resolve("placement", params.placement)(params)
