"""Transaction-size distributions.

The paper's base workload draws ``NUi`` uniformly from ``1 ..
maxtransize`` (mean ≈ ``maxtransize / 2``).  Section 3.6 adds a mixed
workload: 80% small transactions (``maxtransize = 50``) and 20% large
ones (``maxtransize = 500``).  A fixed-size sampler is provided for
controlled experiments and tests.
"""


class UniformSizes:
    """``NU ~ U{1 .. maxtransize}`` (the paper's base workload)."""

    def __init__(self, maxtransize):
        if maxtransize < 1:
            raise ValueError("maxtransize must be >= 1")
        self.maxtransize = maxtransize

    def sample(self, rng):
        """Draw one transaction size."""
        return rng.randint(1, self.maxtransize)

    @property
    def mean(self):
        """Expected transaction size."""
        return (self.maxtransize + 1) / 2.0


class ClassMixSizes:
    """Sampler over a :class:`repro.core.txnclass.WorkloadMix`.

    ``sample`` draws the class (one uniform variate, cumulative
    fraction inversion in declaration order) then that class's size
    from the *same* stream — the single-stream discipline the
    historical ``MixedSizes`` used.  The multi-class model instead
    splits the two draws over dedicated streams via ``pick_class`` /
    ``sample_for`` so every class owns its size stream.
    """

    def __init__(self, mix):
        self.mix = mix
        self._samplers = {
            cls.name: class_size_sampler(cls) for cls in mix
        }

    def pick_class(self, u):
        """The class selected by one uniform variate *u*."""
        return self.mix.pick(u)

    def sample_for(self, cls, rng):
        """Draw one size for *cls* from *rng* (its dedicated stream)."""
        return self._samplers[cls.name].sample(rng)

    def sample(self, rng):
        """Draw one transaction size from the mixture (single stream)."""
        cls = self.mix.pick(rng.random())
        return self._samplers[cls.name].sample(rng)

    @property
    def mean(self):
        """Expected transaction size of the mixture."""
        return self.mix.mean_size


class MixedSizes(ClassMixSizes):
    """A small/large mix (§3.6): each class is itself uniform.

    Re-expressed as a two-class :class:`ClassMixSizes` (compatibility
    alias): the historical coin-flip sampler is exactly a workload
    mix of ``small`` and ``large`` uniform classes, and the random
    stream is consumed identically (one uniform for the class, then
    the class's size draw).

    Parameters
    ----------
    small_fraction:
        Probability a transaction is small (paper: 0.8).
    small_maxtransize / large_maxtransize:
        Upper bounds of the two uniform classes (paper: 50 / 500).
    """

    def __init__(self, small_fraction=0.8, small_maxtransize=50, large_maxtransize=500):
        from repro.core.txnclass import TransactionClass, WorkloadMix

        if not 0.0 <= small_fraction <= 1.0:
            raise ValueError("small_fraction must be in [0, 1]")
        # Degenerate fractions (0 or 1) collapse to one class; the
        # class-pick variate is still drawn, like the historical coin
        # flip, so the stream consumption is unchanged.
        classes = [
            TransactionClass("small", small_fraction, small_maxtransize),
            TransactionClass(
                "large", 1.0 - small_fraction, large_maxtransize
            ),
        ]
        mix = WorkloadMix(
            [cls for cls in classes if cls.fraction > 0.0]
        )
        ClassMixSizes.__init__(self, mix)
        self.small_fraction = small_fraction
        self.small = UniformSizes(small_maxtransize)
        self.large = UniformSizes(large_maxtransize)


class FixedSizes:
    """Every transaction accesses exactly *size* entities."""

    def __init__(self, size):
        if size < 1:
            raise ValueError("size must be >= 1")
        self.size = size

    def sample(self, rng):
        """Return the fixed size (rng unused, kept for interface parity)."""
        return self.size

    @property
    def mean(self):
        """Expected (= fixed) transaction size."""
        return float(self.size)


class TraceSizes:
    """Replay transaction sizes from a recorded trace.

    Sizes are consumed in order and wrap around when exhausted, so a
    short trace drives an arbitrarily long run.  Useful for
    bring-your-own-workload studies and regression comparisons where
    the exact size sequence must be held fixed across configurations.
    """

    def __init__(self, sizes):
        sizes = [int(size) for size in sizes]
        if not sizes:
            raise ValueError("trace must contain at least one size")
        if any(size < 1 for size in sizes):
            raise ValueError("trace sizes must be >= 1")
        self.sizes = sizes
        self._index = 0

    @classmethod
    def from_csv(cls, path, column="nu"):
        """Load sizes from a CSV file with a *column* of integers."""
        import csv

        sizes = []
        with open(path, newline="") as handle:
            for row in csv.DictReader(handle):
                sizes.append(int(row[column]))
        return cls(sizes)

    def sample(self, rng):
        """Next size from the trace (rng unused; interface parity)."""
        size = self.sizes[self._index % len(self.sizes)]
        self._index += 1
        return size

    @property
    def mean(self):
        """Mean of the recorded sizes."""
        return sum(self.sizes) / len(self.sizes)


def class_size_sampler(cls):
    """The per-class sampler for one :class:`TransactionClass`."""
    if cls.size_dist == "fixed":
        return FixedSizes(cls.maxtransize)
    return UniformSizes(cls.maxtransize)


def make_size_sampler(params):
    """Build the size sampler described by *params* (via the registry)."""
    from repro.policies import resolve

    return resolve("workload", params.workload)(params)
