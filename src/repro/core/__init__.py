"""The paper's simulation model: parameters, strategies, and simulator."""

from repro.core.conflict import (
    ExplicitConflicts,
    ProbabilisticConflicts,
    make_conflict_engine,
)
from repro.core.metrics import MetricsCollector
from repro.core.model import (
    LockingGranularityModel,
    simulate,
    simulate_replications,
)
from repro.core.parameters import TABLE_1, SimulationParameters
from repro.core.placement import (
    BestPlacement,
    RandomPlacement,
    WorstPlacement,
    make_placement,
)
from repro.core.partitioning import (
    HorizontalPartitioning,
    RandomPartitioning,
    make_partitioning,
)
from repro.core.results import (
    RESULT_FIELDS,
    ReplicatedResult,
    SimulationResult,
    aggregate,
)
from repro.core.transaction import Transaction, split_entities
from repro.core.workload import (
    FixedSizes,
    MixedSizes,
    UniformSizes,
    make_size_sampler,
)

__all__ = [
    "BestPlacement",
    "ExplicitConflicts",
    "FixedSizes",
    "HorizontalPartitioning",
    "LockingGranularityModel",
    "MetricsCollector",
    "MixedSizes",
    "ProbabilisticConflicts",
    "RESULT_FIELDS",
    "RandomPartitioning",
    "RandomPlacement",
    "ReplicatedResult",
    "SimulationParameters",
    "SimulationResult",
    "TABLE_1",
    "Transaction",
    "UniformSizes",
    "WorstPlacement",
    "aggregate",
    "make_conflict_engine",
    "make_partitioning",
    "make_placement",
    "make_size_sampler",
    "simulate",
    "simulate_replications",
    "split_entities",
]
