"""Data partitioning methods (paper §2 and §3.4).

The partitioning method decides how many sub-transactions a granted
transaction splits into (``PUi``) and on which processors they run.
No two sub-transactions share a processor.

* *Horizontal*: relations are round-robin partitioned over every disk,
  so each transaction splits over **all** processors
  (``PU = npros``).
* *Random*: relations live on a random subset of disks; a transaction
  splits over ``PU ~ U{1 .. npros}`` distinct random processors.
"""


class HorizontalPartitioning:
    """Round-robin over all disks: ``PU = npros`` always."""

    name = "horizontal"

    def __init__(self, npros):
        self.npros = npros

    def processors(self, rng):
        """Every processor, in index order."""
        return list(range(self.npros))


class RandomPartitioning:
    """A uniform random subset: ``PU ~ U{1 .. npros}``."""

    name = "random"

    def __init__(self, npros):
        self.npros = npros

    def processors(self, rng):
        """``PU`` distinct processors chosen uniformly."""
        pu = rng.randint(1, self.npros)
        if pu >= self.npros:
            return list(range(self.npros))
        return rng.sample(range(self.npros), pu)


def make_partitioning(params):
    """Build the partitioning method described by *params* (via the registry)."""
    from repro.policies import resolve

    return resolve("partitioning", params.partitioning)(params)
