"""The closed-system locking-granularity simulator (paper §2).

Transaction lifecycle, exactly as Figure 1 of the paper: pending →
lock request → fork into sub-transactions → per-node I/O and CPU →
join → release → replace.  The model is a thin *orchestrator*: every
strategic decision — arrival, admission, the whole lock-acquisition
phase (cc), workload, placement, partitioning, conflict resolution —
is delegated to a named policy resolved through :mod:`repro.policies`
(see DESIGN.md §8 for the layer map).  The model owns only what every
policy composition shares: the kernel, the machine, the random
streams, the metrics, the trace plumbing and the fork/join execution
of granted transactions.
"""

import os
from itertools import count

from repro.core.conflict import make_conflict_engine
from repro.core.metrics import MetricsCollector
from repro.core.parameters import SimulationParameters
from repro.core.placement import make_placement
from repro.core.partitioning import make_partitioning
from repro.core.results import aggregate
from repro.core.transaction import Transaction, split_entities
from repro.core.workload import make_size_sampler
from repro.des import Environment, RandomStreams
from repro.engine.machine import Machine
from repro.engine.processor import ProcessorDown
from repro.faults.backoff import FixedUniformBackoff
from repro.faults.injector import FaultInjector
from repro.policies import resolve
from repro.policies.admission import AdmissionGate, make_admission_policy

#: Version of the simulation semantics.  Bump whenever a change alters
#: the outputs for a given ``(parameters, seed)`` pair — it is part of
#: the content-address used by :mod:`repro.experiments.cache`, so a
#: bump invalidates every previously cached result.
#:
#: 2: response percentiles switched to explicit nearest-rank (the
#:    ``round``-based pick was off by one on even sample counts).
MODEL_VERSION = 2

#: Named random streams derived from the master seed.  Each stream is
#: seeded from ``(seed, name)`` alone, so adding one never perturbs
#: the others (``fault_backoff`` is separate from ``backoff`` so
#: fault-triggered draws never desync the deadlock-backoff stream).
_STREAMS = (
    "sizes",
    "placement",
    "partitioning",
    "readwrite",
    "backoff",
    "arrivals",
    "fault_backoff",
    "net",
    "commit_backoff",
)


class LockingGranularityModel:
    """One configured instance of the simulation model.

    Build it from a :class:`~repro.core.parameters.SimulationParameters`
    and call :meth:`run`; the instance is single-use (a fresh model is
    built per run so repeated runs never share state).

    Optional extras: ``trace`` (any sink with
    ``emit(time, kind, subject, **details)`` — receives every
    lifecycle, lock-manager and scheduler event), ``size_sampler``
    (any ``sample(rng) -> int``, replaces the workload's size
    distribution), ``telemetry`` (never touches a random stream, so
    results are unchanged), ``fault_plan`` (inert when ``None`` or
    empty, otherwise drives crashes/slowdowns/stalls from its own
    streams), ``backoff`` (the default reproduces the historical
    ``uniform(0, 1)`` draw bit-for-bit) and ``kernel_pool``
    (Timeout/Event recycling — a pure allocator optimisation, results
    pinned bit-identical by tests) and ``metrics_registry`` (a
    :class:`repro.obs.metrics.MetricsRegistry`; live counters, gauges
    and lock-wait histograms updated as the run progresses — the
    instrumentation never schedules events or draws randomness, so
    results are bit-identical with metrics on or off).
    """

    def __init__(
        self,
        params,
        trace=None,
        size_sampler=None,
        telemetry=None,
        fault_plan=None,
        backoff=None,
        kernel_pool=None,
        metrics_registry=None,
    ):
        params.validate()
        self.params = params
        self.telemetry = telemetry
        sinks = [trace]
        if telemetry is not None and telemetry.sink is not None:
            sinks.append(telemetry.sink)
        sinks = [sink for sink in sinks if sink is not None]
        if len(sinks) > 1:
            from repro.obs.sinks import MultiSink

            self.trace = MultiSink(sinks)
        else:
            self.trace = sinks[0] if sinks else None
        if kernel_pool is None:
            kernel_pool = os.environ.get("REPRO_KERNEL_POOL", "1") != "0"
        self.env = Environment(pool=kernel_pool)
        streams = RandomStreams(params.seed)
        self.rngs = {name: streams.stream(name) for name in _STREAMS}
        self.backoff = backoff if backoff is not None else FixedUniformBackoff()
        self.machine = Machine(self.env, params.npros, params.discipline)
        if params.nnodes > 1:
            # Distributed model (DESIGN.md §12): message transport plus
            # cluster bookkeeping.  Only built when asked for, so
            # single-node runs never allocate (or draw from) either.
            from repro.engine.cluster import Cluster
            from repro.net import Network

            self.network = Network(
                self.env,
                params.nnodes,
                latency=params.net_latency,
                jitter=params.net_jitter,
                rng=self.rngs["net"],
            )
            self.cluster = Cluster(self.env, params.nnodes, self.network)
        else:
            self.network = None
            self.cluster = None
        if fault_plan is not None and fault_plan.enabled():
            self._injector = FaultInjector(
                self.env, self.machine, fault_plan, params.seed, trace=self.trace
            )
            self._injector.network = self.network
        else:
            self._injector = None
        self.placement = make_placement(params)
        self.partitioning = make_partitioning(params)
        self.sizes = (
            size_sampler if size_sampler is not None else make_size_sampler(params)
        )
        # Multi-class plumbing: a dedicated class-pick stream plus one
        # size stream per class (seeded from ("sizes", name), so adding
        # or renaming a class never perturbs the others), and per-class
        # placements when a class overrides the access skew.  All of it
        # only exists when a mix is configured — the single-class draw
        # sequence is untouched.
        self.mix = params.workload_mix
        self._class_placements = {}
        if self.mix is not None:
            self.rngs["class"] = streams.stream("class")
            for cls in self.mix:
                self.rngs[("sizes", cls.name)] = streams.stream(
                    "sizes", cls.name
                )
                if cls.access_skew is not None and params.placement == "skewed":
                    self._class_placements[cls.name] = make_placement(
                        params.replace(access_skew=cls.access_skew)
                    )
        # Whether transactions must materialise granule sets up front
        # is a capability of the conflict engine (declared on its
        # registry factory), not a hardcoded name list.
        self._needs_granules = getattr(
            resolve("conflict", params.conflict_engine), "needs_granules", False
        )
        self.conflicts = make_conflict_engine(params, streams.stream("conflict"))
        if self.trace is not None or metrics_registry is not None or self._injector is not None:
            # Traces, live metrics and fault injection all reason about
            # per-event state (including the conflict stream position),
            # so an accelerated engine must pin its exact-scalar path.
            force_scalar = getattr(self.conflicts, "force_scalar", None)
            if force_scalar is not None:
                force_scalar()
        policy = make_admission_policy(params)
        if metrics_registry is not None:
            # Imported directly (not via repro.obs, whose __init__
            # pulls the SVG/report stack) and only when instrumented.
            from repro.obs.metrics import RunInstruments

            self.instruments = RunInstruments(metrics_registry, params)
            self.instruments.attach_kernel(self.env)
            manager = getattr(self.conflicts, "manager", None)
            if manager is not None:
                manager.metrics = self.instruments
                self.instruments.attach_lock_table(manager)
            if self._injector is not None:
                self._injector.metrics = self.instruments
            if self.network is not None:
                self.network.instruments = self.instruments
        else:
            self.instruments = None
        self.metrics = MetricsCollector(
            self.env, params, self.machine, self.conflicts,
            instruments=self.instruments,
            cluster=self.cluster, network=self.network,
        )
        self.admission = AdmissionGate(policy, self.env, self.metrics)
        self.cc = resolve("cc", params.protocol)().bind(self)
        self.commit = resolve("commit", params.commit_protocol)().bind(self)
        self.arrivals = resolve("arrival", params.arrival_process)()
        self._tid = count(1)
        #: blocker tid -> events to succeed when that blocker completes.
        self.blocked_wakes = {}
        if self.trace is not None:
            # The layers below are clock-less; these hooks stamp the
            # current time onto their contention/scheduling events.
            manager = getattr(self.conflicts, "manager", None)
            if manager is not None:
                manager.observer = self._lock_observer
            policy.notify = self._policy_observer
        self._finished = False

    # -- public API ------------------------------------------------------

    def run(self, timeout=None):
        """Run until ``tmax`` and return the
        :class:`~repro.core.results.SimulationResult`.

        ``timeout`` is an optional wall-clock budget in seconds
        (forwarded to the kernel, which raises ``SimulationStalled``
        when it is exhausted).
        """
        if self._finished:
            raise RuntimeError("model instances are single-use; build a new one")
        if self.telemetry is not None:
            self.telemetry.install(self)
        if self._injector is not None:
            self._injector.install()
        self.arrivals.start(self)
        self.env.run(until=self.params.tmax, timeout=timeout)
        self._finished = True
        return self.metrics.finalize()

    # -- transaction factory ---------------------------------------------

    def new_transaction(self, cls=None):
        """Draw one transaction from the workload/placement policies.

        Multi-class runs pick the class from the dedicated ``class``
        stream (or honor a forced *cls* — closed arrivals pin each
        terminal to a class) and draw the size from that class's own
        stream; everything else flows through the shared streams.
        """
        params = self.params
        placement = self.placement
        if self.mix is not None:
            if cls is None:
                cls = self.mix.pick(self.rngs["class"].random())
            nu = self.sizes.sample_for(cls, self.rngs[("sizes", cls.name)])
            placement = self._class_placements.get(cls.name, placement)
        else:
            nu = self.sizes.sample(self.rngs["sizes"])
        lock_count = placement.lock_count(nu)
        if self._needs_granules:
            granules = placement.granules(nu, self.rngs["placement"])
        else:
            granules = None
        write_fraction = (
            params.write_fraction if cls is None else cls.write_fraction
        )
        if write_fraction >= 1.0:
            is_writer = True
        else:
            is_writer = self.rngs["readwrite"].random() < write_fraction
        return Transaction(
            next(self._tid), nu, lock_count, granules, is_writer,
            txn_class=cls,
        )

    # -- trace plumbing ----------------------------------------------------

    def emit(self, kind, txn, **details):
        """Record a lifecycle event for *txn* (no-op without a sink)."""
        if self.trace is not None:
            self.trace.emit(self.env.now, kind, txn.tid, **details)

    def emit_system(self, kind, **details):
        """Record a cluster/system event (subject 0, like the injector's)."""
        if self.trace is not None:
            self.trace.emit(self.env.now, kind, 0, **details)

    def _lock_observer(self, kind, owner, **details):
        """Lock-manager contention events, stamped with the clock.

        ``lock_queue`` is reported as the lifecycle kind ``block``
        (the table-backed counterpart of preclaim's post-denial block).
        """
        if kind == "lock_queue":
            kind = "block"
        self.trace.emit(
            self.env.now, kind, getattr(owner, "tid", owner), **details
        )

    def _policy_observer(self, kind, **details):
        """Admission-policy transitions (system events, subject 0)."""
        self.trace.emit(self.env.now, kind, 0, **details)

    # -- lifecycle ---------------------------------------------------------

    def lifecycle(self, txn):
        """The full life of one transaction (an arrival policy spawns
        one of these per arriving transaction)."""
        txn.arrival = self.env.now
        self.emit("arrive", txn, nu=txn.nu, locks=txn.lock_count)
        yield from self.admission.admit(txn)
        self.emit("admit", txn)
        while True:
            try:
                yield from self.cc.acquire(txn)
            except ProcessorDown as down:
                # The node crashed while serving this transaction's
                # lock-management work.
                yield from self.cc.fault_abort(txn, down.index)
                continue
            self.metrics.active.update(self.conflicts.active_count)
            self.metrics.locks_held.update(self.conflicts.locks_held)
            if (yield from self._execute(txn)):
                if (yield from self.cc.post_execute(txn)):
                    if (yield from self.commit.commit(txn)):
                        break
                    # Distributed commit presumed aborted (timeout or
                    # partition): locks already released, backoff
                    # already slept — re-acquire from scratch.
                    continue
                # The protocol killed the transaction at its commit
                # point (wound-wait): re-acquire from scratch.
                continue
            # A sub-transaction died on a crashed node: abort the
            # parent, release its locks and retry from the lock phase.
            yield from self.cc.fault_abort(txn, None)
        self._complete(txn)

    def wake_waiters(self, txn):
        """Succeed every event blocked on *txn* (release notification)."""
        for wake in self.blocked_wakes.pop(txn.tid, ()):
            if not wake.triggered:
                wake.succeed()

    # -- execution ---------------------------------------------------------

    def _execute(self, txn):
        """Run the sub-transactions; True iff every one completed.

        A sub on a crashed node reports failure without failing its
        process event, so the join always succeeds and surviving
        siblings run to completion before the parent aborts.
        """
        processors = self.partitioning.processors(self.rngs["partitioning"])
        self.emit("exec", txn, pu=len(processors))
        shares = split_entities(txn.nu, len(processors))
        subtxns = []
        for sub, (proc_index, entities) in enumerate(zip(processors, shares)):
            if entities <= 0:
                continue
            self.emit("fork", txn, sub=sub, node=proc_index, entities=entities)
            subtxns.append(
                self.env.process(
                    self._subtransaction(txn, sub, proc_index, entities)
                )
            )
        if subtxns:
            yield self.env.all_of(subtxns)
        self.emit("join", txn, subs=len(subtxns))
        return all(sub.value for sub in subtxns)

    def _subtransaction(self, txn, sub, proc_index, entities):
        params = self.params
        node = self.machine[proc_index]
        try:
            self.emit("io_start", txn, sub=sub, node=proc_index)
            yield node.io(entities * params.iotime)
            self.emit("io_end", txn, sub=sub, node=proc_index)
            self.emit("cpu_start", txn, sub=sub, node=proc_index)
            yield node.compute(entities * params.cputime)
            self.emit("cpu_end", txn, sub=sub, node=proc_index)
        except ProcessorDown as down:
            self.emit("sub_fail", txn, sub=sub, node=down.index)
            return False
        return True

    # -- completion ----------------------------------------------------------

    def _complete(self, txn):
        self.emit("commit", txn, attempts=txn.attempts)
        self.conflicts.release(txn)
        self.emit("complete", txn, response=self.env.now - txn.arrival)
        self.metrics.active.update(self.conflicts.active_count)
        self.metrics.locks_held.update(self.conflicts.locks_held)
        self.metrics.note_completion(txn)
        self.wake_waiters(txn)
        self.admission.on_complete()
        self.arrivals.on_complete(self, txn)


def simulate(params=None, fault_plan=None, backoff=None, **overrides):
    """Run one simulation and return its result.

    Accepts a prebuilt :class:`SimulationParameters`, keyword overrides
    applied to the defaults, or both.  ``fault_plan`` and ``backoff``
    are run-harness inputs, not simulation parameters, so they never
    enter the result-cache address.
    """
    if params is None:
        params = SimulationParameters(**overrides)
    elif overrides:
        params = params.replace(**overrides)
    return LockingGranularityModel(
        params, fault_plan=fault_plan, backoff=backoff
    ).run()


def simulate_replications(params, replications=5, base_seed=None):
    """Run independent replications and aggregate them.

    Seeds are ``base_seed, base_seed + 1, ...`` (default: start at the
    seed in *params*).  Returns a
    :class:`~repro.core.results.ReplicatedResult`.
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    start = params.seed if base_seed is None else base_seed
    results = []
    for i in range(replications):
        run_params = params.replace(seed=start + i)
        results.append(LockingGranularityModel(run_params).run())
    return aggregate(results)
