"""The closed-system locking-granularity simulator (paper §2).

Transaction lifecycle, exactly as Figure 1 of the paper:

1. A fixed population of ``ntrans`` transactions cycles through the
   system; the initial population arrives one time unit apart.
2. A transaction waits in the **pending queue** until the admission
   policy lets it issue its lock request (the paper's policy, FCFS
   with no limit, admits immediately in arrival order).
3. The lock request charges ``LU·lcputime`` CPU and ``LU·liotime``
   I/O — split evenly over all processors at preemptive priority,
   covering the eventual release, and charged even when the request is
   denied.  The conflict engine then grants the request or names a
   blocking active transaction; a denied transaction waits in the
   **blocked queue** until its blocker completes, then retries (paying
   the request cost again).
4. A granted transaction splits into sub-transactions per the
   partitioning method — no two on the same processor — and each
   queues for its node's disk, then its node's CPU.
5. When every sub-transaction finishes, the parent releases its locks,
   wakes the transactions blocked on it, and is replaced by a fresh
   transaction, keeping the population constant.

The optional *incremental* protocol (claim-as-needed 2PL with
deadlock detection; footnote 1 of the paper) replaces step 3: granules
are acquired one at a time through the explicit lock manager, waiting
in place on conflict; waits-for cycles are broken by aborting the
youngest transaction in the cycle, which releases everything, backs
off briefly and retries.  The bundled request cost is charged the same
way, once per attempt.
"""

import os
from itertools import count

from repro.core.conflict import make_conflict_engine
from repro.core.metrics import MetricsCollector
from repro.core.parameters import SimulationParameters
from repro.core.placement import make_placement
from repro.core.partitioning import make_partitioning
from repro.core.results import aggregate
from repro.core.transaction import Transaction, split_entities
from repro.core.workload import make_size_sampler
from repro.des import Environment, RandomStreams
from repro.engine.machine import Machine
from repro.engine.processor import ProcessorDown
from repro.engine.txn_scheduler import make_admission_policy
from repro.faults.backoff import FixedUniformBackoff
from repro.faults.injector import FaultInjector
from repro.lockmgr.deadlock import DeadlockDetector
from repro.lockmgr.manager import RequestStatus
from repro.lockmgr.modes import LockMode

#: Outcome value delivered to a waiting incremental request when its
#: owner is killed as a deadlock victim.
_ABORTED = "aborted"

#: Version of the simulation semantics.  Bump this whenever a change
#: alters the outputs produced for a given ``(parameters, seed)`` pair
#: — it is part of the content-address used by
#: :mod:`repro.experiments.cache`, so bumping it invalidates every
#: previously cached result.
#:
#: 2: response percentiles switched to the explicit nearest-rank
#:    formula (the previous ``round``-based pick was off by one on
#:    even sample counts); simulation dynamics are unchanged.
MODEL_VERSION = 2


class LockingGranularityModel:
    """One configured instance of the simulation model.

    Build it from a :class:`~repro.core.parameters.SimulationParameters`
    and call :meth:`run`; the instance is single-use (a fresh model is
    built per run so repeated runs never share state).

    Parameters
    ----------
    params:
        The run's configuration.
    trace:
        Optional trace sink — anything with
        ``emit(time, kind, subject, **details)``, e.g. the in-memory
        :class:`~repro.des.trace.Trace` ring buffer or a
        :class:`~repro.obs.sinks.JsonlTraceSink`.  When given, every
        transaction lifecycle transition is recorded: arrive, admit,
        lock_request, lock_grant, lock_deny, block, wake, abort,
        exec, fork, io_start/io_end, cpu_start/cpu_end, join, commit,
        complete, plus lock-manager contention events
        (lock_promote, lock_cancel) and scheduler transitions
        (mpl_change, subject 0).
    size_sampler:
        Optional replacement for the workload's size distribution —
        any object with ``sample(rng) -> int`` (e.g.
        :class:`~repro.core.workload.TraceSizes` for replaying a
        recorded workload).
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` bundle; its
        sink (if any) receives the same events as *trace*, and its
        time-series recorder (if configured) is installed when the
        run starts.  Telemetry never touches a random stream, so
        results are identical with or without it.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`.  A ``None`` or
        empty plan is inert and results are bit-identical to a build
        without fault support; an enabled plan schedules processor
        crashes, disk slowdowns and lock-manager stalls from the
        injector's own random streams (never the model's).  Fault
        transitions surface in the trace as ``proc_crash`` /
        ``proc_recover`` / ``disk_slow`` / ``disk_recover`` /
        ``lockmgr_stall`` / ``lockmgr_resume`` (subject 0), and
        affected transactions emit ``sub_fail`` and ``retry``.
    backoff:
        Optional :class:`~repro.faults.backoff.BackoffPolicy` used for
        deadlock-victim backoff and failure-retry backoff.  Defaults
        to :class:`~repro.faults.backoff.FixedUniformBackoff`, which
        reproduces the historical inline ``uniform(0, 1)`` draw
        bit-for-bit.
    kernel_pool:
        Whether the simulation kernel recycles processed Timeout and
        Event objects (see ``Environment(pool=...)``).  ``None``
        (the default) reads ``REPRO_KERNEL_POOL`` (on unless set to
        ``0``).  Pooling never changes results — it is a pure
        allocator optimisation, and bit-identity is pinned by tests.
    """

    def __init__(
        self,
        params,
        trace=None,
        size_sampler=None,
        telemetry=None,
        fault_plan=None,
        backoff=None,
        kernel_pool=None,
    ):
        params.validate()
        self.params = params
        self.telemetry = telemetry
        sinks = [trace]
        if telemetry is not None and telemetry.sink is not None:
            sinks.append(telemetry.sink)
        sinks = [sink for sink in sinks if sink is not None]
        if len(sinks) > 1:
            from repro.obs.sinks import MultiSink

            self.trace = MultiSink(sinks)
        else:
            self.trace = sinks[0] if sinks else None
        self._size_sampler_override = size_sampler
        if kernel_pool is None:
            # Event pooling is a pure allocator optimisation (results
            # are bit-identical either way, pinned by tests), so it
            # defaults on; REPRO_KERNEL_POOL=0 is the escape hatch.
            kernel_pool = os.environ.get("REPRO_KERNEL_POOL", "1") != "0"
        self.env = Environment(pool=kernel_pool)
        streams = RandomStreams(params.seed)
        self._rng_size = streams.stream("sizes")
        self._rng_place = streams.stream("placement")
        self._rng_part = streams.stream("partitioning")
        self._rng_rw = streams.stream("readwrite")
        self._rng_backoff = streams.stream("backoff")
        self._rng_arrivals = streams.stream("arrivals")
        # Failure-retry backoff has its own stream so fault-triggered
        # draws never perturb the deadlock-backoff stream above.
        self._rng_fault_backoff = streams.stream("fault_backoff")
        self.backoff = backoff if backoff is not None else FixedUniformBackoff()
        self.machine = Machine(self.env, params.npros, params.discipline)
        if fault_plan is not None and fault_plan.enabled():
            self._injector = FaultInjector(
                self.env, self.machine, fault_plan, params.seed, trace=self.trace
            )
        else:
            self._injector = None
        self.placement = make_placement(params)
        self.partitioning = make_partitioning(params)
        self.sizes = (
            size_sampler if size_sampler is not None else make_size_sampler(params)
        )
        self.conflicts = make_conflict_engine(params, streams.stream("conflict"))
        self.policy = make_admission_policy(params)
        self.metrics = MetricsCollector(
            self.env, params, self.machine, self.conflicts
        )
        self._tid = count(1)
        self._pending = []
        self._in_flight = 0
        self._blocked_wakes = {}
        self._waiting_request = {}
        self._victim_wake = {}
        if params.protocol == "incremental":
            self._detector = DeadlockDetector(
                self.conflicts.manager, victim_key=lambda txn: txn.tid
            )
        else:
            self._detector = None
        if self.trace is not None:
            # Thread the sink through the layers below the model: the
            # lock manager reports contention transitions and the
            # admission policy reports scheduling decisions.  Both are
            # clock-less, so the hooks stamp the current time here.
            manager = getattr(self.conflicts, "manager", None)
            if manager is not None:
                manager.observer = self._lock_observer
            self.policy.notify = self._policy_observer
        self._finished = False

    # -- public API ------------------------------------------------------

    def run(self, timeout=None):
        """Run until ``tmax`` and return the
        :class:`~repro.core.results.SimulationResult`.

        Parameters
        ----------
        timeout:
            Optional wall-clock budget in seconds, forwarded to
            :meth:`repro.des.engine.Environment.run`; when exhausted
            the run raises
            :class:`~repro.des.errors.SimulationStalled`.
        """
        if self._finished:
            raise RuntimeError("model instances are single-use; build a new one")
        if self.telemetry is not None:
            self.telemetry.install(self)
        if self._injector is not None:
            self._injector.install()
        if self.params.arrival_process == "open":
            self.env.process(self._open_arrivals())
        else:
            for i in range(self.params.ntrans):
                self.env.process(self._arrival(delay=float(i)))
        self.env.run(until=self.params.tmax, timeout=timeout)
        self._finished = True
        return self.metrics.finalize()

    # -- transaction factory ---------------------------------------------

    def _new_transaction(self):
        params = self.params
        nu = self.sizes.sample(self._rng_size)
        lock_count = self.placement.lock_count(nu)
        if params.conflict_engine in ("explicit", "hierarchical"):
            granules = self.placement.granules(nu, self._rng_place)
        else:
            granules = None
        if params.write_fraction >= 1.0:
            is_writer = True
        else:
            is_writer = self._rng_rw.random() < params.write_fraction
        return Transaction(next(self._tid), nu, lock_count, granules, is_writer)

    # -- lifecycle processes -----------------------------------------------

    def _arrival(self, delay):
        if delay > 0:
            yield self.env.timeout(delay)
        yield from self._lifecycle(self._new_transaction())

    def _open_arrivals(self):
        """Poisson source for the open-system extension."""
        rate = self.params.arrival_rate
        while True:
            yield self.env.timeout(self._rng_arrivals.expovariate(rate))
            self.env.process(self._lifecycle(self._new_transaction()))

    def _emit(self, kind, txn, **details):
        if self.trace is not None:
            self.trace.emit(self.env.now, kind, txn.tid, **details)

    def _lock_observer(self, kind, owner, **details):
        """Lock-manager contention events, stamped with the clock.

        ``lock_queue`` is reported as the lifecycle kind ``block`` —
        it is the incremental protocol's blocked-queue entry, the
        counterpart of the preclaim protocol's post-denial block.
        """
        if kind == "lock_queue":
            kind = "block"
        self.trace.emit(
            self.env.now, kind, getattr(owner, "tid", owner), **details
        )

    def _policy_observer(self, kind, **details):
        """Admission-policy transitions (system events, subject 0)."""
        self.trace.emit(self.env.now, kind, 0, **details)

    def _lifecycle(self, txn):
        txn.arrival = self.env.now
        self._emit("arrive", txn, nu=txn.nu, locks=txn.lock_count)
        yield from self._await_admission(txn)
        self._emit("admit", txn)
        while True:
            try:
                if self.params.protocol == "preclaim":
                    yield from self._preclaim_locks(txn)
                else:
                    yield from self._incremental_locks(txn)
            except ProcessorDown as down:
                # The node crashed while serving this transaction's
                # share of lock-management work.
                yield from self._retry_after_failure(txn, down.index)
                continue
            self.metrics.active.update(self.conflicts.active_count)
            self.metrics.locks_held.update(self.conflicts.locks_held)
            if (yield from self._execute(txn)):
                break
            # A sub-transaction died on a crashed node: abort the
            # parent, release its locks and retry from the lock phase.
            yield from self._retry_after_failure(txn, None)
        self._complete(txn)

    def _retry_after_failure(self, txn, node):
        """Degraded-mode abort: release, wake waiters, back off, retry."""
        self.conflicts.release(txn)
        self.metrics.active.update(self.conflicts.active_count)
        self.metrics.locks_held.update(self.conflicts.locks_held)
        self.metrics.note_failure_abort()
        txn.fault_retries += 1
        self._emit("retry", txn, node=node, retries=txn.fault_retries)
        for wake in self._blocked_wakes.pop(txn.tid, ()):
            if not wake.triggered:
                wake.succeed()
        yield self.env.timeout(
            self.backoff.delay(self._rng_fault_backoff, txn.fault_retries - 1)
        )

    def _await_admission(self, txn):
        admit = self.env.event()
        self._pending.append((txn, admit))
        self.metrics.pending.update(len(self._pending))
        self._pump_admission()
        yield admit

    def _pump_admission(self):
        while self._pending:
            index = self.policy.select(
                [txn for txn, _ in self._pending], self._in_flight
            )
            if index is None:
                return
            _, admit = self._pending.pop(index)
            self.metrics.pending.update(len(self._pending))
            self._in_flight += 1
            admit.succeed()

    # -- preclaim protocol -------------------------------------------------

    def _preclaim_locks(self, txn):
        params = self.params
        # The hierarchical engine sets intention locks and may escalate,
        # so the chargeable lock count is its planned set, not the flat
        # placement count.
        plan_count = getattr(self.conflicts, "planned_lock_count", None)
        while True:
            txn.attempts += 1
            self.metrics.note_request()
            locks = plan_count(txn) if plan_count is not None else txn.lock_count
            self._emit("lock_request", txn, attempt=txn.attempts, locks=locks)
            yield self.machine.lock_overhead(
                locks * params.lcputime, locks * params.liotime
            )
            blocker = self.conflicts.request(txn)
            if blocker is None:
                self._emit("lock_grant", txn, attempt=txn.attempts)
                self.policy.on_grant()
                return
            self._emit("lock_deny", txn, blocker=blocker.tid)
            self.metrics.note_denial()
            self.policy.on_deny()
            wake = self.env.event()
            self._blocked_wakes.setdefault(blocker.tid, []).append(wake)
            self._emit("block", txn, blocker=blocker.tid)
            self.metrics.blocked.increment(1)
            yield wake
            self._emit("wake", txn)
            self.metrics.blocked.increment(-1)

    # -- incremental (claim-as-needed) protocol ------------------------------

    def _incremental_locks(self, txn):
        params = self.params
        manager = self.conflicts.manager
        mode = LockMode.X if txn.is_writer else LockMode.S
        while True:
            txn.attempts += 1
            self.metrics.note_request()
            self._emit(
                "lock_request", txn, attempt=txn.attempts,
                locks=len(txn.granules),
            )
            # The bundled request/set/release cost, charged per attempt
            # exactly as in the preclaim protocol so the two schemes
            # differ only in conflict semantics.
            yield self.machine.lock_overhead(
                len(txn.granules) * params.lcputime,
                len(txn.granules) * params.liotime,
            )
            aborted = False
            for granule in txn.granules:
                request = manager.acquire(txn, granule, mode)
                if request.status is RequestStatus.GRANTED:
                    continue
                wake = self.env.event()
                request.on_grant = lambda _req, event=wake: event.succeed("granted")
                self._waiting_request[txn.tid] = request
                self._victim_wake[txn.tid] = wake
                victim = self._detector.resolve_once()
                if victim is not None and victim is not txn:
                    self._abort_victim(victim)
                    victim = None
                if victim is txn:
                    self._abort_self(txn, request)
                    aborted = True
                    break
                self.metrics.blocked.increment(1)
                outcome = yield wake
                self.metrics.blocked.increment(-1)
                self._waiting_request.pop(txn.tid, None)
                self._victim_wake.pop(txn.tid, None)
                if outcome == _ABORTED:
                    aborted = True
                    break
            if not aborted:
                self._emit("lock_grant", txn, attempt=txn.attempts)
                self.conflicts.mark_active(txn)
                self.policy.on_grant()
                return
            self._emit("abort", txn, aborts=txn.aborts + 1)
            self.metrics.note_denial()
            self.metrics.note_abort()
            txn.aborts += 1
            self.policy.on_deny()
            # Randomised backoff so the same cycle does not instantly
            # re-form among retrying victims.  The policy seam keeps
            # the default (FixedUniformBackoff) drawing exactly the
            # historical uniform(0, 1) variate from the same stream.
            yield self.env.timeout(
                self.backoff.delay(self._rng_backoff, txn.aborts - 1)
            )

    def _abort_self(self, txn, request):
        manager = self.conflicts.manager
        manager.cancel(request)
        manager.release_all(txn)
        self._waiting_request.pop(txn.tid, None)
        self._victim_wake.pop(txn.tid, None)

    def _abort_victim(self, victim):
        """Kill another waiting transaction to break a cycle."""
        manager = self.conflicts.manager
        request = self._waiting_request.pop(victim.tid, None)
        if request is not None:
            manager.cancel(request)
        manager.release_all(victim)
        wake = self._victim_wake.pop(victim.tid, None)
        if wake is not None and not wake.triggered:
            wake.succeed(_ABORTED)

    # -- execution ---------------------------------------------------------

    def _execute(self, txn):
        """Run the sub-transactions; True iff every one completed.

        A sub-transaction on a crashed node reports failure (it never
        fails its process event, so the join below always succeeds);
        surviving siblings run to completion before the parent aborts.
        """
        processors = self.partitioning.processors(self._rng_part)
        self._emit("exec", txn, pu=len(processors))
        shares = split_entities(txn.nu, len(processors))
        subtxns = []
        for sub, (proc_index, entities) in enumerate(zip(processors, shares)):
            if entities <= 0:
                continue
            self._emit("fork", txn, sub=sub, node=proc_index, entities=entities)
            subtxns.append(
                self.env.process(
                    self._subtransaction(txn, sub, proc_index, entities)
                )
            )
        if subtxns:
            yield self.env.all_of(subtxns)
        self._emit("join", txn, subs=len(subtxns))
        return all(sub.value for sub in subtxns)

    def _subtransaction(self, txn, sub, proc_index, entities):
        params = self.params
        node = self.machine[proc_index]
        try:
            self._emit("io_start", txn, sub=sub, node=proc_index)
            yield node.io(entities * params.iotime)
            self._emit("io_end", txn, sub=sub, node=proc_index)
            self._emit("cpu_start", txn, sub=sub, node=proc_index)
            yield node.compute(entities * params.cputime)
            self._emit("cpu_end", txn, sub=sub, node=proc_index)
        except ProcessorDown as down:
            self._emit("sub_fail", txn, sub=sub, node=down.index)
            return False
        return True

    # -- completion ----------------------------------------------------------

    def _complete(self, txn):
        self._emit("commit", txn, attempts=txn.attempts)
        self.conflicts.release(txn)
        self._emit("complete", txn, response=self.env.now - txn.arrival)
        self.metrics.active.update(self.conflicts.active_count)
        self.metrics.locks_held.update(self.conflicts.locks_held)
        self.metrics.note_completion(txn)
        for wake in self._blocked_wakes.pop(txn.tid, ()):
            if not wake.triggered:
                wake.succeed()
        self._in_flight -= 1
        self._pump_admission()
        if self.params.arrival_process == "closed":
            # Closed system: the finished transaction is immediately
            # replaced so the population stays at ntrans.
            self.env.process(self._lifecycle(self._new_transaction()))


def simulate(params=None, fault_plan=None, backoff=None, **overrides):
    """Run one simulation and return its result.

    Accepts a prebuilt :class:`SimulationParameters`, keyword
    overrides applied to the defaults, or both::

        result = simulate(ltot=100, npros=10, tmax=2000)

    ``fault_plan`` and ``backoff`` are forwarded to the model (they
    are run-harness inputs, not simulation parameters, so they never
    enter the result-cache address).
    """
    if params is None:
        params = SimulationParameters(**overrides)
    elif overrides:
        params = params.replace(**overrides)
    return LockingGranularityModel(
        params, fault_plan=fault_plan, backoff=backoff
    ).run()


def simulate_replications(params, replications=5, base_seed=None):
    """Run independent replications and aggregate them.

    Seeds are ``base_seed, base_seed + 1, ...`` (default: start at the
    seed in *params*).  Returns a
    :class:`~repro.core.results.ReplicatedResult`.
    """
    if replications < 1:
        raise ValueError("replications must be >= 1")
    start = params.seed if base_seed is None else base_seed
    results = []
    for i in range(replications):
        run_params = params.replace(seed=start + i)
        results.append(LockingGranularityModel(run_params).run())
    return aggregate(results)
