"""Simulation input parameters (the paper's Table 1, plus strategy knobs).

The numeric parameters use the paper's names verbatim (``dbsize``,
``ltot``, ``ntrans``, ``maxtransize``, ``cputime``, ``iotime``,
``lcputime``, ``liotime``, ``npros``, ``tmax``).  Defaults reproduce
Table 1 as recoverable from the text: ``dbsize = 5000``,
``ntrans = 10``, ``maxtransize = 500``, ``cputime = 0.05``,
``iotime = 0.2``, ``lcputime = 0.01``, ``liotime = 0.2``.  The paper's
``tmax`` is not recoverable from the available text; the default of
5000 time units is long enough that every configuration completes
hundreds of transactions (see DESIGN.md).
"""

import dataclasses
from dataclasses import dataclass

from repro.core.txnclass import WorkloadMix, format_class_specs, normalize_classes
from repro.policies import PARAM_FIELDS, UnknownPolicyError, registry

#: Placement strategies: §3.5 of the paper, plus ``skewed`` (hot-spot
#: access, an extension controlled by ``access_skew``).
PLACEMENTS = registry.names("placement")
#: Data partitioning methods (section 2 / 3.4).
PARTITIONINGS = registry.names("partitioning")
#: How lock conflicts are decided.  ``probabilistic`` is the paper's
#: interval model; ``explicit`` is a real flat lock table;
#: ``hierarchical`` adds file/block multi-granularity with optional
#: lock escalation (the Gamma-style design the paper's conclusion
#: discusses).
CONFLICT_ENGINES = registry.names("conflict")
#: Lock acquisition (concurrency-control) protocols.
PROTOCOLS = registry.names("cc")
#: Distributed commit/replication protocols (DESIGN.md §12).
COMMIT_PROTOCOLS = registry.names("commit")
#: Transaction-size workloads (uniform per Table 1; mixed per §3.6).
WORKLOADS = registry.names("workload")
#: Transaction admission policies (§3.7 / refs [3,4] extension).
TXN_POLICIES = registry.names("admission")
#: Arrival processes (closed per the paper; open/bursty extensions).
ARRIVAL_PROCESSES = registry.names("arrival")
#: Sub-transaction queueing disciplines at each CPU/disk (a server
#: property, not a policy layer — see repro.des.server).
DISCIPLINES = ("fcfs", "sjf")


@dataclass(frozen=True)
class SimulationParameters:
    """Inputs of one simulation run.

    Attributes
    ----------
    dbsize:
        Number of accessible entities in the database.
    ltot:
        Number of locks (granules); ``ltot = 1`` is whole-database
        locking, ``ltot = dbsize`` is entity-level locking.
    ntrans:
        Fixed number of transactions in the closed system (terminals).
    maxtransize:
        Maximum transaction size; sizes are U{1..maxtransize} for the
        uniform workload, so the mean size is ``(maxtransize + 1) / 2``.
    cputime / iotime:
        CPU / I/O time to process one database entity.
    lcputime / liotime:
        CPU / I/O time to request-and-set one lock (includes the
        eventual release; charged even when the request is denied).
    npros:
        Number of processors, each with a private CPU and disk.
    tmax:
        Simulated time horizon.
    placement:
        Granule placement: ``best`` (LU proportional to the database
        fraction accessed), ``worst`` (``min(NU, ltot)``), or
        ``random`` (Yao mean-value formula).
    partitioning:
        ``horizontal`` (every transaction splits over all processors)
        or ``random`` (uniform 1..npros processors).
    conflict_engine:
        ``probabilistic`` (the paper's Ries–Stonebraker interval
        model) or ``explicit`` (a real lock table with materialised
        granule sets).
    protocol:
        Concurrency-control protocol: ``preclaim`` (the paper's
        conservative scheme), ``incremental`` (claim-as-needed 2PL;
        requires the explicit engine; deadlocks resolved by aborting
        the youngest), ``no-waiting`` (immediate restart on denial)
        or ``wound-wait`` (older transactions wound younger lock
        holders; requires the explicit engine).  Extensible: any name
        registered under the ``cc`` layer of
        :data:`repro.policies.registry` is accepted.
    workload:
        ``uniform`` (Table 1), ``mixed`` (§3.6 small/large mix) or
        ``fixed`` (every transaction exactly ``maxtransize`` entities).
    mix_small_fraction / mix_small_maxtransize / mix_large_maxtransize:
        Mixed-workload shape; defaults are the paper's 80% small
        (maxtransize 50) / 20% large (maxtransize 500).
    write_fraction:
        Probability a transaction is an updater taking X locks (the
        paper's model is all-X, ``1.0``).  Read-only transactions take
        S locks in the table-backed engines and share compatible
        overlaps in the probabilistic engine's mode extension.
    txn_policy / mpl_limit:
        Admission policy for starting lock requests and its
        multiprogramming limit (``None`` = unlimited, the paper's
        model).  ``adaptive`` adjusts the limit from the observed
        denial rate.
    discipline:
        Queueing discipline of each CPU/disk server.
    nfiles / escalation_threshold:
        Shape of the hierarchical engine's file level and its lock
        escalation trigger (0 disables escalation).
    access_skew:
        Zipf ``theta`` for the ``skewed`` placement (0 = uniform);
        hot-spot extension, requires a table-backed engine.
    arrival_process / arrival_rate:
        ``closed`` is the paper's fixed-population model; ``open`` is
        an extension with Poisson arrivals at ``arrival_rate`` per
        time unit and no replacement on completion; ``bursty`` is a
        Markov-modulated Poisson source alternating quiet phases (at
        ``arrival_rate``) with shorter high-rate bursts.
    nnodes:
        Number of cluster sites (1 = the paper's single machine; the
        distributed model only exists when ``nnodes > 1``).  Every
        site holds a full database replica; transactions are homed
        deterministically at ``(tid - 1) % nnodes``.
    commit_protocol:
        Distributed commit/replication protocol: ``local`` (the
        single-site default; commits are free), ``2pc`` (presumed-abort
        two-phase commit across all sites) or ``primary-copy``
        (synchronous commit at the primary, asynchronous replication,
        majority failover on partition).  Extensible via the
        ``commit`` layer of :data:`repro.policies.registry`.
    net_latency / net_jitter:
        One-way message latency between sites: a fixed base plus a
        uniform ``[0, net_jitter)`` component drawn from the dedicated
        ``net`` stream.
    commit_timeout:
        Coordinator patience: a 2PC prepare round (or a primary-copy
        forward) that has not completed within this many time units is
        presumed aborted and retried after backoff.
    txn_classes:
        Multi-class workload mix: a tuple of
        :class:`repro.core.txnclass.TransactionClass` (or a compact
        spec string, e.g. ``"oltp:0.8:50,batch:0.2:500:gran=file"``)
        used when ``workload = "classes"``.  Empty (the default)
        means the historical single-class model; the field is then
        omitted from parameter dicts so cache digests are unchanged.
    seed:
        Master random seed (named substreams derive from it).
    warmup:
        Statistics before this time are discarded.
    """

    dbsize: int = 5000
    ltot: int = 100
    ntrans: int = 10
    maxtransize: int = 500
    cputime: float = 0.05
    iotime: float = 0.2
    lcputime: float = 0.01
    liotime: float = 0.2
    npros: int = 10
    tmax: float = 5000.0
    placement: str = "best"
    partitioning: str = "horizontal"
    conflict_engine: str = "probabilistic"
    protocol: str = "preclaim"
    workload: str = "uniform"
    mix_small_fraction: float = 0.8
    mix_small_maxtransize: int = 50
    mix_large_maxtransize: int = 500
    write_fraction: float = 1.0
    txn_policy: str = "fcfs"
    mpl_limit: int = 0  # 0 means unlimited
    discipline: str = "fcfs"
    nfiles: int = 20
    escalation_threshold: int = 0  # 0 disables lock escalation
    access_skew: float = 0.8  # Zipf theta for the "skewed" placement
    arrival_process: str = "closed"  # closed | open
    arrival_rate: float = 1.0  # mean arrivals per time unit (open only)
    nnodes: int = 1  # cluster sites (1 = single-node paper model)
    commit_protocol: str = "local"  # local | 2pc | primary-copy
    net_latency: float = 0.0  # one-way inter-site latency
    net_jitter: float = 0.0  # uniform extra latency bound
    commit_timeout: float = 5.0  # coordinator presumed-abort patience
    txn_classes: tuple = ()  # multi-class mix (empty = single-class)
    seed: int = 1
    warmup: float = 0.0

    def __post_init__(self):
        # Accept spec strings / lists / WorkloadMix for txn_classes and
        # store the canonical tuple (frozen dataclass, hence setattr).
        object.__setattr__(
            self, "txn_classes", normalize_classes(self.txn_classes)
        )
        self.validate()

    def validate(self):
        """Raise ``ValueError`` on any inconsistent setting."""
        if self.dbsize < 1:
            raise ValueError("dbsize must be >= 1, got {}".format(self.dbsize))
        if not 1 <= self.ltot <= self.dbsize:
            raise ValueError(
                "ltot must be in [1, dbsize={}], got {}".format(self.dbsize, self.ltot)
            )
        if self.ntrans < 1:
            raise ValueError("ntrans must be >= 1, got {}".format(self.ntrans))
        if not 1 <= self.maxtransize <= self.dbsize:
            raise ValueError(
                "maxtransize must be in [1, dbsize={}], got {}".format(
                    self.dbsize, self.maxtransize
                )
            )
        if self.npros < 1:
            raise ValueError("npros must be >= 1, got {}".format(self.npros))
        for name in ("cputime", "iotime", "lcputime", "liotime"):
            if getattr(self, name) < 0:
                raise ValueError("{} must be >= 0".format(name))
        if self.tmax <= 0:
            raise ValueError("tmax must be > 0, got {}".format(self.tmax))
        if not 0 <= self.warmup < self.tmax:
            raise ValueError(
                "warmup must be in [0, tmax={}), got {}".format(self.tmax, self.warmup)
            )
        # Every policy-selecting field must name a registered policy.
        # UnknownPolicyError is a ValueError carrying the registered
        # names and close-match suggestions ("wond-wait" -> wound-wait).
        for layer, field in sorted(PARAM_FIELDS.items()):
            value = getattr(self, field)
            if (layer, value) not in registry:
                raise UnknownPolicyError(layer, value, registry.names(layer))
        # Engine capabilities are declared on the conflict factory
        # itself (supports_granule_cc, table_backed, validate_params)
        # so new engines opt in without this module naming them.
        cc = registry.resolve("cc", self.protocol)
        engine = registry.resolve("conflict", self.conflict_engine)
        if getattr(cc, "needs_granules", False) and not getattr(
            engine, "supports_granule_cc", False
        ):
            raise ValueError(
                "the {} protocol tracks per-granule ownership and "
                "requires a granule-tracking engine (explicit)".format(
                    self.protocol
                )
            )
        if self.nfiles < 1:
            raise ValueError("nfiles must be >= 1, got {}".format(self.nfiles))
        if self.escalation_threshold < 0:
            raise ValueError("escalation_threshold must be >= 0")
        if self.access_skew < 0:
            raise ValueError("access_skew must be >= 0")
        if self.placement == "skewed" and not getattr(
            engine, "table_backed", False
        ):
            raise ValueError(
                "the skewed placement needs a table-backed conflict engine "
                "(explicit or hierarchical); the interval model cannot "
                "represent hot spots"
            )
        engine_check = getattr(engine, "validate_params", None)
        if engine_check is not None:
            engine_check(self)
        if self.arrival_process != "closed" and self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be > 0 for the open system")
        if not 0.0 <= self.mix_small_fraction <= 1.0:
            raise ValueError("mix_small_fraction must be in [0, 1]")
        if self.workload == "mixed":
            for name in ("mix_small_maxtransize", "mix_large_maxtransize"):
                value = getattr(self, name)
                if not 1 <= value <= self.dbsize:
                    raise ValueError(
                        "{} must be in [1, dbsize={}], got {}".format(
                            name, self.dbsize, value
                        )
                    )
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be in [0, 1]")
        if self.txn_classes and self.workload != "classes":
            raise ValueError(
                "txn_classes is set but workload={!r}; multi-class mixes "
                "need workload='classes'".format(self.workload)
            )
        if self.workload == "classes":
            if not self.txn_classes:
                raise ValueError(
                    "workload='classes' needs a non-empty txn_classes mix "
                    "(e.g. 'oltp:0.8:50,batch:0.2:500')"
                )
            # Full mix validation (fractions sum to 1, names unique,
            # per-class bounds against dbsize).
            WorkloadMix(self.txn_classes, dbsize=self.dbsize)
        if self.mpl_limit < 0:
            raise ValueError("mpl_limit must be >= 0 (0 = unlimited)")
        if self.nnodes < 1:
            raise ValueError("nnodes must be >= 1, got {}".format(self.nnodes))
        if self.net_latency < 0 or self.net_jitter < 0:
            raise ValueError("net_latency and net_jitter must be >= 0")
        if self.commit_timeout <= 0:
            raise ValueError(
                "commit_timeout must be > 0, got {}".format(self.commit_timeout)
            )
        if self.commit_protocol != "local" and self.nnodes < 2:
            raise ValueError(
                "the {} commit protocol is distributed and needs "
                "nnodes >= 2".format(self.commit_protocol)
            )
        if self.discipline not in DISCIPLINES:
            raise ValueError(
                "discipline must be one of {}, got {!r}".format(
                    DISCIPLINES, self.discipline
                )
            )

    def replace(self, **changes):
        """A copy with *changes* applied (re-validated)."""
        return dataclasses.replace(self, **changes)

    def as_dict(self):
        """Plain-dict view (for CSV/JSON persistence).

        ``txn_classes`` is carried as its canonical spec string, and
        *omitted entirely* when empty — so single-class parameter
        documents (and hence cache digests) are byte-identical to the
        pre-multi-class format.
        """
        out = dataclasses.asdict(self)
        if self.txn_classes:
            out["txn_classes"] = format_class_specs(self.txn_classes)
        else:
            del out["txn_classes"]
        return out

    @property
    def workload_mix(self):
        """The validated :class:`WorkloadMix`, or ``None`` single-class."""
        if not self.txn_classes:
            return None
        return WorkloadMix(self.txn_classes, dbsize=self.dbsize)

    @property
    def mean_transaction_size(self):
        """Expected NU under the configured workload."""
        if self.workload == "classes":
            return self.workload_mix.mean_size
        if self.workload == "fixed":
            return float(self.maxtransize)
        if self.workload == "mixed":
            small = (self.mix_small_maxtransize + 1) / 2.0
            large = (self.mix_large_maxtransize + 1) / 2.0
            return (
                self.mix_small_fraction * small
                + (1.0 - self.mix_small_fraction) * large
            )
        return (self.maxtransize + 1) / 2.0

    @property
    def granule_size(self):
        """Entities per granule (real-valued when not divisible)."""
        return self.dbsize / self.ltot


#: The defaults above, under the name the paper uses for them.
TABLE_1 = SimulationParameters()
