"""Lock-conflict engines.

Two interchangeable implementations decide whether a preclaim lock
request is granted, and if not, *which* active transaction blocks it:

:class:`ProbabilisticConflicts`
    The paper's engine (from Ries & Stonebraker): no individual locks
    are tracked.  With active transactions ``T1..Tk`` holding
    ``L1..Lk`` locks out of ``ltot``, the unit interval is partitioned
    into ``P1 = (0, L1/ltot], P2 = (L1/ltot, (L1+L2)/ltot], ...,
    Pk+1 = (ΣLj/ltot, 1]``; a uniform draw landing in ``Pj`` (j ≤ k)
    blocks the request on ``Tj``, otherwise it is granted.

:class:`ExplicitConflicts`
    A real lock table: each transaction carries a materialised granule
    set (see :mod:`repro.core.placement`) and conflicts are decided by
    actual mode compatibility.  Used to validate the probabilistic
    model and to run the incremental (claim-as-needed) protocol.

Both expose the same three operations: ``request`` (grant or name a
blocker), ``release``, and ``active_count``.
"""

from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode


class ProbabilisticConflicts:
    """The Ries–Stonebraker interval conflict model.

    The paper's base model treats every transaction as an updater
    (exclusive locks).  When ``write_fraction < 1`` the model extends
    the interval test with lock modes: a uniform draw landing in an
    active transaction's interval means the requested granule set
    overlaps that transaction's set, which only blocks when at least
    one side is a writer — two readers share.  (A single draw tests a
    single overlap, so reader-reader overlaps that *also* overlap a
    writer are approximated as conflict-free; the explicit lock-table
    engine, which the tests compare against, has no such
    approximation.)
    """

    def __init__(self, ltot, rng):
        if ltot < 1:
            raise ValueError("ltot must be >= 1")
        self.ltot = ltot
        self._rng = rng
        # Insertion-ordered: the interval partition enumerates active
        # transactions in the order they acquired their locks.
        self._active = {}
        self._txn_map = {}

    @property
    def active_count(self):
        """Number of transactions currently holding locks."""
        return len(self._active)

    @property
    def locks_held(self):
        """Total locks currently held by active transactions."""
        return sum(self._active.values())

    def request(self, txn):
        """Decide *txn*'s preclaim request.

        Returns ``None`` when granted (txn becomes active holding
        ``txn.lock_count`` locks) or the blocking active transaction.
        """
        if txn.tid in self._active:
            raise ValueError("transaction {} already active".format(txn.tid))
        # p is uniform on (0, 1]; random() is [0, 1), so mirror it.
        p = 1.0 - self._rng.random()
        threshold = p * self.ltot
        cumulative = 0.0
        blocker = None
        for tid, locks in self._active.items():
            cumulative += locks
            if threshold <= cumulative:
                overlapped = self._txn_map[tid]
                if txn.is_writer or overlapped.is_writer:
                    blocker = overlapped
                break
        if blocker is not None:
            return blocker
        self._active[txn.tid] = txn.lock_count
        self._txn_map[txn.tid] = txn
        return None

    def release(self, txn):
        """Drop *txn* from the active set (no-op if not active)."""
        self._active.pop(txn.tid, None)
        self._txn_map.pop(txn.tid, None)


class ExplicitConflicts:
    """Conflict decisions backed by a real lock table.

    Transactions must carry a materialised ``granules`` list.  Writers
    take X locks on every granule; readers take S locks (only relevant
    when ``write_fraction < 1``, an extension to the paper's all-X
    model).
    """

    def __init__(self, manager=None):
        self.manager = manager if manager is not None else LockManager()
        self._active = {}

    @property
    def active_count(self):
        """Number of transactions currently holding locks."""
        return len(self._active)

    @property
    def locks_held(self):
        """Total granules currently locked by active transactions."""
        return sum(len(t.granules) for t in self._active.values())

    def request(self, txn):
        """Atomically claim *txn*'s granule set, or name a blocker."""
        if txn.granules is None:
            raise ValueError(
                "explicit conflict engine needs materialised granules; "
                "transaction {} has none".format(txn.tid)
            )
        mode = LockMode.X if txn.is_writer else LockMode.S
        blocker = self.manager.try_acquire_all(
            txn, [(granule, mode) for granule in txn.granules]
        )
        if blocker is None:
            self._active[txn.tid] = txn
            return None
        return blocker

    def mark_active(self, txn):
        """Record *txn* as active (incremental protocol entry point).

        The incremental protocol acquires granules one at a time
        through :attr:`manager` directly, so it registers the
        transaction here once its lock set is complete.
        """
        self._active[txn.tid] = txn

    def release(self, txn):
        """Release every lock *txn* holds."""
        self._active.pop(txn.tid, None)
        self.manager.release_all(txn)


def make_conflict_engine(params, rng):
    """Build the conflict engine described by *params* (via the registry)."""
    from repro.policies import resolve

    return resolve("conflict", params.conflict_engine)(params, rng)
