"""Lock-conflict engines.

Two interchangeable implementations decide whether a preclaim lock
request is granted, and if not, *which* active transaction blocks it:

:class:`ProbabilisticConflicts`
    The paper's engine (from Ries & Stonebraker): no individual locks
    are tracked.  With active transactions ``T1..Tk`` holding
    ``L1..Lk`` locks out of ``ltot``, the unit interval is partitioned
    into ``P1 = (0, L1/ltot], P2 = (L1/ltot, (L1+L2)/ltot], ...,
    Pk+1 = (ΣLj/ltot, 1]``; a uniform draw landing in ``Pj`` (j ≤ k)
    blocks the request on ``Tj``, otherwise it is granted.

:class:`ExplicitConflicts`
    A real lock table: each transaction carries a materialised granule
    set (see :mod:`repro.core.placement`) and conflicts are decided by
    actual mode compatibility.  Used to validate the probabilistic
    model and to run the incremental (claim-as-needed) protocol.

Both expose the same three operations: ``request`` (grant or name a
blocker), ``release``, and ``active_count``.

:class:`VectorizedConflicts` is a drop-in accelerated variant of the
probabilistic engine: identical decisions drawn from the identical
random stream, with the interval scan done by numpy when the active
set is large enough to amortise the array overhead (and a plain
scalar scan otherwise, or whenever numpy is not installed).
"""

import os

from repro.lockmgr.manager import LockManager
from repro.lockmgr.modes import LockMode

try:  # numpy is an optional extra (``pip install .[fast]``)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None


class ProbabilisticConflicts:
    """The Ries–Stonebraker interval conflict model.

    The paper's base model treats every transaction as an updater
    (exclusive locks).  When ``write_fraction < 1`` the model extends
    the interval test with lock modes: a uniform draw landing in an
    active transaction's interval means the requested granule set
    overlaps that transaction's set, which only blocks when at least
    one side is a writer — two readers share.  (A single draw tests a
    single overlap, so reader-reader overlaps that *also* overlap a
    writer are approximated as conflict-free; the explicit lock-table
    engine, which the tests compare against, has no such
    approximation.)
    """

    def __init__(self, ltot, rng):
        if ltot < 1:
            raise ValueError("ltot must be >= 1")
        self.ltot = ltot
        self._rng = rng
        # Insertion-ordered: the interval partition enumerates active
        # transactions in the order they acquired their locks.
        self._active = {}
        self._txn_map = {}

    @property
    def active_count(self):
        """Number of transactions currently holding locks."""
        return len(self._active)

    @property
    def locks_held(self):
        """Total locks currently held by active transactions."""
        return sum(self._active.values())

    def request(self, txn):
        """Decide *txn*'s preclaim request.

        Returns ``None`` when granted (txn becomes active holding
        ``txn.lock_count`` locks) or the blocking active transaction.
        """
        if txn.tid in self._active:
            raise ValueError("transaction {} already active".format(txn.tid))
        # p is uniform on (0, 1]; random() is [0, 1), so mirror it.
        p = 1.0 - self._rng.random()
        threshold = p * self.ltot
        cumulative = 0.0
        blocker = None
        for tid, locks in self._active.items():
            cumulative += locks
            if threshold <= cumulative:
                overlapped = self._txn_map[tid]
                if txn.is_writer or overlapped.is_writer:
                    blocker = overlapped
                break
        if blocker is not None:
            return blocker
        self._active[txn.tid] = txn.lock_count
        self._txn_map[txn.tid] = txn
        return None

    def release(self, txn):
        """Drop *txn* from the active set (no-op if not active)."""
        self._active.pop(txn.tid, None)
        self._txn_map.pop(txn.tid, None)


class VectorizedConflicts(ProbabilisticConflicts):
    """Numpy-accelerated Ries–Stonebraker engine (decision-identical).

    The scalar engine walks the active set in Python, accumulating
    lock counts until the drawn threshold falls inside a transaction's
    interval.  This variant keeps the same insertion-ordered dicts but
    answers the scan with ``searchsorted`` over a cumulative-locks
    array: the cumulative sums are the same sequential float64
    additions, and ``side="left"`` returns exactly the first index
    whose cumulative sum reaches the threshold — the scalar loop's
    break point — so grant/block decisions (and the blocker identity)
    are bit-identical for the same random stream.

    The array is maintained incrementally rather than rebuilt: a grant
    appends one partial sum, a release shifts the tail down by the
    departing transaction's lock count in one C-level slice operation.
    Lock counts are integers, so these float64 updates are exact and
    the partial sums never drift from what a fresh scan would compute.

    Two knobs tune the fast path without changing any decision:

    ``batch`` (``REPRO_CONFLICT_BATCH``, default 64)
        Uniform draws are prefetched from the conflict stream in
        blocks of this size and consumed in order, so the stream
        position advances early but the consumed sequence — the only
        thing decisions depend on — is unchanged.  ``1`` disables
        prefetching (every request draws on demand, exactly like the
        scalar engine).
    ``cutoff`` (``REPRO_CONFLICT_CUTOFF``, default 112)
        Minimum active-set size for the numpy scan.  Below it the
        scalar loop — which touches only ~half the set on average and
        pays no per-call numpy overhead — wins; the measured crossover
        on a release/request churn workload is k ≈ 112 actives (see
        ``benchmarks/bench_sched.py --conflict``), with the numpy path
        ~2x faster at k=256 and ~5x at k=1024.  Below the cutoff the
        engine simply runs the scalar scan, which is
        decision-identical anyway.

    When numpy is missing the engine degrades to the scalar scan
    (``vectorized`` reports ``False``) — same results, no hard
    dependency.  :meth:`force_scalar` pins the scalar path for runs
    that need per-event fidelity (traces, live metrics, faults).
    """

    def __init__(self, ltot, rng, batch=None, cutoff=None):
        super().__init__(ltot, rng)
        if batch is None:
            batch = int(os.environ.get("REPRO_CONFLICT_BATCH") or 64)
        if cutoff is None:
            cutoff = int(os.environ.get("REPRO_CONFLICT_CUTOFF") or 112)
        if batch < 1:
            raise ValueError("batch must be >= 1")
        if cutoff < 0:
            raise ValueError("cutoff must be >= 0")
        self._batch = batch
        self._cutoff = cutoff
        self._forced_scalar = False
        #: Prefetched uniforms, reversed so pop() consumes in draw order.
        self._draws = []
        #: Cumulative-locks buffer (float64, capacity-doubled) and the
        #: matching insertion-ordered tid list; ``_n`` is the valid
        #: prefix length.  Lock counts are integers, so every
        #: incremental update below is exact in float64 (values stay
        #: far under 2**53) and the partial sums stay bit-identical to
        #: the scalar loop's running accumulation.  ``_dirty`` forces a
        #: full rebuild — the initial state, and the escape hatch if a
        #: non-integer lock count ever appears.
        self._cum = None
        self._tids = []
        self._n = 0
        self._dirty = True

    @property
    def vectorized(self):
        """True when the numpy scan can be used for large active sets."""
        return _np is not None and not self._forced_scalar

    def force_scalar(self):
        """Pin the scalar scan and on-demand draws.

        Called by the model whenever traces, live metrics or fault
        injection are attached: those consumers reason about per-event
        state (including the conflict stream position), so the engine
        must behave exactly like :class:`ProbabilisticConflicts`.
        Already-prefetched draws are still consumed in order — the
        decision sequence never changes, only future prefetching stops.
        """
        self._forced_scalar = True
        self._batch = 1

    def _next_draw(self):
        d = self._draws
        if not d:
            if self._batch <= 1:
                return self._rng.random()
            rnd = self._rng.random
            d.extend(rnd() for _ in range(self._batch))
            d.reverse()
        return d.pop()

    def request(self, txn):
        """Decide *txn*'s preclaim request (see the scalar engine).

        Identical decision procedure; only the scan implementation is
        chosen per call based on the active-set size.
        """
        if txn.tid in self._active:
            raise ValueError("transaction {} already active".format(txn.tid))
        # p is uniform on (0, 1]; random() is [0, 1), so mirror it.
        p = 1.0 - self._next_draw()
        threshold = p * self.ltot
        active = self._active
        k = len(active)
        blocker = None
        if (
            k >= self._cutoff
            and _np is not None
            and not self._forced_scalar
        ):
            if self._dirty:
                self._rebuild()
            # side="left" returns the first index whose cumulative sum
            # reaches the threshold — the scalar loop's break point.
            j = int(
                _np.searchsorted(self._cum[:k], threshold, side="left")
            )
            if j < k:
                overlapped = self._txn_map[self._tids[j]]
                if txn.is_writer or overlapped.is_writer:
                    blocker = overlapped
        else:
            cumulative = 0.0
            for tid, locks in active.items():
                cumulative += locks
                if threshold <= cumulative:
                    overlapped = self._txn_map[tid]
                    if txn.is_writer or overlapped.is_writer:
                        blocker = overlapped
                    break
        if blocker is not None:
            return blocker
        locks = txn.lock_count
        active[txn.tid] = locks
        self._txn_map[txn.tid] = txn
        if not self._dirty:
            # Incremental append keeps the array warm: exact because
            # lock counts are integers.
            if locks.__class__ is int:
                n = self._n
                cum = self._cum
                if n >= len(cum):
                    self._grow(n)
                    cum = self._cum
                cum[n] = cum[n - 1] + locks if n else float(locks)
                self._tids.append(txn.tid)
                self._n = n + 1
            else:
                self._dirty = True
        return None

    def release(self, txn):
        """Drop *txn* from the active set (no-op if not active)."""
        locks = self._active.get(txn.tid)
        super().release(txn)
        if locks is None or self._dirty:
            return
        if locks.__class__ is int:
            # C-speed removal: shift the tail of the cumulative array
            # down by this transaction's (integer, hence exact) locks.
            tids = self._tids
            idx = tids.index(txn.tid)
            n = self._n
            cum = self._cum
            cum[idx : n - 1] = cum[idx + 1 : n] - locks
            tids.pop(idx)
            self._n = n - 1
        else:
            self._dirty = True

    def _rebuild(self):
        """Recompute the cumulative array from the active dict.

        ``cumsum`` performs the same sequential float64 accumulation
        the scalar loop does, so partial sums match bit-for-bit.
        """
        active = self._active
        k = len(active)
        cap = max(64, 2 * k)
        if self._cum is None or len(self._cum) < cap:
            self._cum = _np.empty(cap, _np.float64)
        _np.cumsum(
            _np.fromiter(active.values(), _np.float64, k),
            out=self._cum[:k],
        )
        self._tids = list(active)
        self._n = k
        self._dirty = False

    def _grow(self, n):
        new = _np.empty(max(64, 2 * len(self._cum)), _np.float64)
        new[:n] = self._cum[:n]
        self._cum = new


class ExplicitConflicts:
    """Conflict decisions backed by a real lock table.

    Transactions must carry a materialised ``granules`` list.  Writers
    take X locks on every granule; readers take S locks (only relevant
    when ``write_fraction < 1``, an extension to the paper's all-X
    model).
    """

    def __init__(self, manager=None):
        self.manager = manager if manager is not None else LockManager()
        self._active = {}

    @property
    def active_count(self):
        """Number of transactions currently holding locks."""
        return len(self._active)

    @property
    def locks_held(self):
        """Total granules currently locked by active transactions."""
        return sum(len(t.granules) for t in self._active.values())

    def request(self, txn):
        """Atomically claim *txn*'s granule set, or name a blocker."""
        if txn.granules is None:
            raise ValueError(
                "explicit conflict engine needs materialised granules; "
                "transaction {} has none".format(txn.tid)
            )
        mode = LockMode.X if txn.is_writer else LockMode.S
        blocker = self.manager.try_acquire_all(
            txn, [(granule, mode) for granule in txn.granules]
        )
        if blocker is None:
            self._active[txn.tid] = txn
            return None
        return blocker

    def mark_active(self, txn):
        """Record *txn* as active (incremental protocol entry point).

        The incremental protocol acquires granules one at a time
        through :attr:`manager` directly, so it registers the
        transaction here once its lock set is complete.
        """
        self._active[txn.tid] = txn

    def release(self, txn):
        """Release every lock *txn* holds."""
        self._active.pop(txn.tid, None)
        self.manager.release_all(txn)


def make_conflict_engine(params, rng):
    """Build the conflict engine described by *params* (via the registry)."""
    from repro.policies import resolve

    return resolve("conflict", params.conflict_engine)(params, rng)
