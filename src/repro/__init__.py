"""Reproduction of *Locking Granularity in Multiprocessor Database
Systems* (S. Dandamudi and S.-L. Au, ICDE 1991).

A discrete-event simulation study of lock granule size in
shared-nothing multiprocessor database systems, rebuilt as a library:

* :mod:`repro.core` — the paper's closed-system simulation model
  (parameters, placement/partitioning strategies, conflict engines,
  the simulator, metrics and results);
* :mod:`repro.des` — the process-oriented discrete-event kernel it
  runs on;
* :mod:`repro.lockmgr` — an explicit lock-manager substrate
  (modes, lock table, preclaim/2PL, hierarchy, deadlock detection);
* :mod:`repro.engine` — the shared-nothing machine model and
  transaction admission policies;
* :mod:`repro.analytic` — Yao's formula and closed-form companions;
* :mod:`repro.experiments` — the harness reproducing Table 1 and
  Figures 2–12, plus ablations.

Quickstart
----------
>>> from repro import simulate
>>> result = simulate(ltot=100, npros=10, tmax=500)
>>> result.totcom > 0
True
"""

from repro.core.model import (
    LockingGranularityModel,
    simulate,
    simulate_replications,
)
from repro.core.parameters import TABLE_1, SimulationParameters
from repro.core.results import ReplicatedResult, SimulationResult

__version__ = "1.0.0"

__all__ = [
    "LockingGranularityModel",
    "ReplicatedResult",
    "SimulationParameters",
    "SimulationResult",
    "TABLE_1",
    "__version__",
    "simulate",
    "simulate_replications",
]
