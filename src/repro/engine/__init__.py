"""The shared-nothing machine model.

A :class:`Machine` is ``npros`` :class:`Processor` nodes, each owning a
private CPU server and a private disk server (shared-nothing: no
memory or disk is shared between nodes).  Lock-management work is
fanned out evenly across every node at preemptive priority, matching
the paper's assumptions that "processors share the work for [the]
locking mechanism" and that "the locking mechanism has preemptive
power over running transactions for I/O and CPU resources".
"""

from repro.engine.machine import Machine
from repro.engine.processor import LOCK_PRIORITY, TXN_PRIORITY, Processor
from repro.engine.txn_scheduler import (
    AdaptiveAdmission,
    FCFSAdmission,
    SmallestFirstAdmission,
    make_admission_policy,
)

__all__ = [
    "AdaptiveAdmission",
    "FCFSAdmission",
    "LOCK_PRIORITY",
    "Machine",
    "Processor",
    "SmallestFirstAdmission",
    "TXN_PRIORITY",
    "make_admission_policy",
]
