"""The multiprocessor: processor array plus lock-work fan-out."""

from repro.engine.processor import LOCK_TAG, TXN_TAG, Processor


class BusySnapshot:
    """Busy-time totals of the whole machine at one instant.

    Fields follow the paper's output-parameter names: ``totcpus`` /
    ``totios`` are total busy time summed over all CPUs / disks;
    ``lockcpus`` / ``lockios`` are the lock-management shares.
    """

    __slots__ = ("totcpus", "totios", "lockcpus", "lockios")

    def __init__(self, totcpus, totios, lockcpus, lockios):
        self.totcpus = totcpus
        self.totios = totios
        self.lockcpus = lockcpus
        self.lockios = lockios

    def minus(self, other):
        """Componentwise difference (for warmup-window accounting)."""
        return BusySnapshot(
            self.totcpus - other.totcpus,
            self.totios - other.totios,
            self.lockcpus - other.lockcpus,
            self.lockios - other.lockios,
        )


class Machine:
    """``npros`` shared-nothing processor nodes.

    Parameters
    ----------
    env:
        Owning environment.
    npros:
        Number of processor nodes.
    discipline:
        Queueing discipline for every CPU/disk server.
    """

    def __init__(self, env, npros, discipline="fcfs"):
        if npros < 1:
            raise ValueError("npros must be >= 1, got {}".format(npros))
        self.env = env
        self.npros = npros
        self.processors = [Processor(env, i, discipline) for i in range(npros)]

    def __len__(self):
        return self.npros

    def __getitem__(self, index):
        return self.processors[index]

    def lock_overhead(self, cpu_total, io_total):
        """Charge one lock request's total processing to the machine.

        The work is divided evenly across every node ("processors share
        the work for [the] locking mechanism") at preemptive priority;
        the returned event fires when the slowest share completes.
        """
        if cpu_total <= 0 and io_total <= 0:
            return self.env.timeout(0)
        cpu_share = cpu_total / self.npros
        io_share = io_total / self.npros
        events = [p.lock_work(cpu_share, io_share) for p in self.processors]
        if len(events) == 1:
            return events[0]
        return self.env.all_of(events)

    def busy_snapshot(self):
        """Current :class:`BusySnapshot` over all nodes."""
        totcpus = sum(p.cpu.busy_time() for p in self.processors)
        totios = sum(p.disk.busy_time() for p in self.processors)
        lockcpus = sum(p.cpu.busy_time(LOCK_TAG) for p in self.processors)
        lockios = sum(p.disk.busy_time(LOCK_TAG) for p in self.processors)
        return BusySnapshot(totcpus, totios, lockcpus, lockios)

    def txn_busy_totals(self):
        """(cpu, io) busy time spent on transaction work, all nodes."""
        cpu = sum(p.cpu.busy_time(TXN_TAG) for p in self.processors)
        io = sum(p.disk.busy_time(TXN_TAG) for p in self.processors)
        return cpu, io
