"""The multiprocessor: processor array plus lock-work fan-out."""

from repro.engine.processor import LOCK_TAG, TXN_TAG, Processor


class BusySnapshot:
    """Busy-time totals of the whole machine at one instant.

    Fields follow the paper's output-parameter names: ``totcpus`` /
    ``totios`` are total busy time summed over all CPUs / disks;
    ``lockcpus`` / ``lockios`` are the lock-management shares.
    """

    __slots__ = ("totcpus", "totios", "lockcpus", "lockios")

    def __init__(self, totcpus, totios, lockcpus, lockios):
        self.totcpus = totcpus
        self.totios = totios
        self.lockcpus = lockcpus
        self.lockios = lockios

    def minus(self, other):
        """Componentwise difference (for warmup-window accounting)."""
        return BusySnapshot(
            self.totcpus - other.totcpus,
            self.totios - other.totios,
            self.lockcpus - other.lockcpus,
            self.lockios - other.lockios,
        )


class Machine:
    """``npros`` shared-nothing processor nodes.

    Parameters
    ----------
    env:
        Owning environment.
    npros:
        Number of processor nodes.
    discipline:
        Queueing discipline for every CPU/disk server.
    """

    def __init__(self, env, npros, discipline="fcfs"):
        if npros < 1:
            raise ValueError("npros must be >= 1, got {}".format(npros))
        self.env = env
        self.npros = npros
        self.processors = [Processor(env, i, discipline) for i in range(npros)]
        self._down_count = 0
        self._downtime = 0.0
        self._down_since = {}
        self._degraded_time = 0.0
        self._degraded_since = None
        self._lock_scale = 1.0

    def __len__(self):
        return self.npros

    def __getitem__(self, index):
        return self.processors[index]

    # -- fault injection -------------------------------------------------

    @property
    def down_count(self):
        """Number of nodes currently down."""
        return self._down_count

    def crash(self, index):
        """Crash node *index*; returns the number of jobs killed there."""
        proc = self.processors[index]
        if not proc.up:
            return 0
        killed = proc.crash()
        self._down_since[index] = self.env.now
        if self._down_count == 0:
            self._degraded_since = self.env.now
        self._down_count += 1
        return killed

    def recover(self, index):
        """Bring node *index* back up."""
        proc = self.processors[index]
        if proc.up:
            return
        proc.recover()
        self._downtime += self.env.now - self._down_since.pop(index)
        self._down_count -= 1
        if self._down_count == 0:
            self._degraded_time += self.env.now - self._degraded_since
            self._degraded_since = None

    def downtime(self, now):
        """Total node-downtime accumulated by *now*, open intervals included.

        Summed over nodes: two nodes down for 5 time units each
        contribute 10.
        """
        total = self._downtime
        for since in self._down_since.values():
            total += now - since
        return total

    def degraded_time(self, now):
        """Time with at least one node down, open interval included."""
        total = self._degraded_time
        if self._degraded_since is not None:
            total += now - self._degraded_since
        return total

    @property
    def lock_scale(self):
        """Current lock-manager service-time inflation (1.0 = nominal)."""
        return self._lock_scale

    def set_lock_scale(self, factor):
        """Inflate future lock-management demands by *factor* (a stall)."""
        if factor <= 0:
            raise ValueError("lock scale must be > 0, got {}".format(factor))
        self._lock_scale = float(factor)

    def lock_overhead(self, cpu_total, io_total):
        """Charge one lock request's total processing to the machine.

        The work is divided evenly across every *up* node ("processors
        share the work for [the] locking mechanism") at preemptive
        priority; the returned event fires when the slowest share
        completes.  With all nodes down the request costs nothing — the
        requesting transaction will fail on its own node's servers.
        """
        if cpu_total <= 0 and io_total <= 0:
            return self.env.timeout(0)
        if self._lock_scale != 1.0:
            cpu_total *= self._lock_scale
            io_total *= self._lock_scale
        if self._down_count:
            nodes = [p for p in self.processors if p.up]
            if not nodes:
                return self.env.timeout(0)
        else:
            nodes = self.processors
        cpu_share = cpu_total / len(nodes)
        io_share = io_total / len(nodes)
        events = [p.lock_work(cpu_share, io_share) for p in nodes]
        if len(events) == 1:
            return events[0]
        return self.env.all_of(events)

    def busy_snapshot(self):
        """Current :class:`BusySnapshot` over all nodes."""
        totcpus = sum(p.cpu.busy_time() for p in self.processors)
        totios = sum(p.disk.busy_time() for p in self.processors)
        lockcpus = sum(p.cpu.busy_time(LOCK_TAG) for p in self.processors)
        lockios = sum(p.disk.busy_time(LOCK_TAG) for p in self.processors)
        return BusySnapshot(totcpus, totios, lockcpus, lockios)

    def txn_busy_totals(self):
        """(cpu, io) busy time spent on transaction work, all nodes."""
        cpu = sum(p.cpu.busy_time(TXN_TAG) for p in self.processors)
        io = sum(p.disk.busy_time(TXN_TAG) for p in self.processors)
        return cpu, io
