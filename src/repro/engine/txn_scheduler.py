"""Compatibility shim — admission policies moved to
:mod:`repro.policies.admission`.

The transaction-level scheduling policies (FCFS, smallest-first,
adaptive MPL) now live in the policy package, registered under the
``"admission"`` layer of :data:`repro.policies.registry`.  This module
re-exports them so historical imports keep working; new code should
import from :mod:`repro.policies.admission` (or resolve by name
through the registry).
"""

from repro.policies.admission import (  # noqa: F401
    AdaptiveAdmission,
    FCFSAdmission,
    SmallestFirstAdmission,
    make_admission_policy,
)

__all__ = [
    "AdaptiveAdmission",
    "FCFSAdmission",
    "SmallestFirstAdmission",
    "make_admission_policy",
]
