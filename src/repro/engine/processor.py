"""One shared-nothing processor node: a private CPU and a private disk."""

from repro.des.events import Event
from repro.des.server import Server

#: Lock-management work preempts transaction work (paper §2).
LOCK_PRIORITY = 0
#: Ordinary transaction service priority.
TXN_PRIORITY = 1

#: Busy-time accounting tags.
LOCK_TAG = "lock"
TXN_TAG = "txn"


class ProcessorDown(Exception):
    """Raised into work waiting on (or submitted to) a crashed node.

    The model treats it as a sub-transaction failure: the parent
    transaction aborts, releases its locks and retries under the
    configured backoff policy.
    """

    def __init__(self, index):
        super().__init__("processor {} is down".format(index))
        self.index = index


class Processor:
    """A node with a CPU server and a disk (I/O) server.

    Parameters
    ----------
    env:
        Owning environment.
    index:
        Node number (0-based), used in server names.
    discipline:
        Queueing discipline for both servers (``fcfs`` or ``sjf``).
    """

    def __init__(self, env, index, discipline="fcfs"):
        self.env = env
        self.index = index
        self.up = True
        self.cpu = Server(env, "cpu{}".format(index), discipline)
        self.disk = Server(env, "disk{}".format(index), discipline)

    def __repr__(self):
        return "<Processor {}{}>".format(self.index, "" if self.up else " DOWN")

    # -- fault injection -------------------------------------------------

    def crash(self):
        """Take the node down, killing all queued and in-service work.

        Every killed job's waiter receives :class:`ProcessorDown`.
        Idempotent; returns the number of jobs killed.
        """
        if not self.up:
            return 0
        self.up = False
        down = ProcessorDown(self.index)
        return self.cpu.fail_all(down) + self.disk.fail_all(down)

    def recover(self):
        """Bring the node back up (it restarts with empty queues)."""
        self.up = True

    def _down_event(self):
        """An event that fails with :class:`ProcessorDown` immediately."""
        event = Event(self.env)
        event.fail(ProcessorDown(self.index))
        return event

    def lock_work(self, cpu_demand, io_demand):
        """Submit this node's share of a lock request's processing.

        Both device demands are posted at preemptive priority and run
        concurrently; the returned event fires when both complete.
        Zero-demand shares complete immediately.
        """
        events = []
        if io_demand > 0:
            events.append(self.disk.submit(io_demand, LOCK_PRIORITY, LOCK_TAG))
        if cpu_demand > 0:
            events.append(self.cpu.submit(cpu_demand, LOCK_PRIORITY, LOCK_TAG))
        if not events:
            return self.env.timeout(0)
        if len(events) == 1:
            return events[0]
        return self.env.all_of(events)

    def io(self, demand):
        """Queue transaction I/O on this node's disk."""
        if not self.up:
            return self._down_event()
        return self.disk.submit(demand, TXN_PRIORITY, TXN_TAG)

    def compute(self, demand):
        """Queue transaction CPU work on this node's processor."""
        if not self.up:
            return self._down_event()
        return self.cpu.submit(demand, TXN_PRIORITY, TXN_TAG)

    # -- accounting ------------------------------------------------------

    def cpu_busy(self, tag=None):
        """CPU busy time (total or for one tag)."""
        return self.cpu.busy_time(tag)

    def io_busy(self, tag=None):
        """Disk busy time (total or for one tag)."""
        return self.disk.busy_time(tag)
