"""A cluster of database sites layered over the single-site machine.

The paper's machine is one shared-nothing multiprocessor.  The
distributed model (DESIGN.md §12) surrounds it with ``nnodes`` logical
*sites*: site ids ``0 .. nnodes-1``, each holding a full copy of the
database (full replication, as in the primary-copy literature).  The
workload still executes on the local machine — remote sites matter for
the commit protocols' message exchanges and for availability
accounting — which keeps the model cheap while making every commit pay
the network round trips the protocol requires.

The :class:`Cluster` tracks:

- the deterministic *home site* of each transaction
  (``(tid - 1) % nnodes``, no random draws, so distributed runs keep
  the single-node event streams untouched),
- the current *primary* site for primary-copy replication, including
  failover elections,
- partition bookkeeping for availability: total wall time any
  partition was active, and site-time spent outside the majority
  component (the capacity the partition takes away).
"""


class Cluster:
    """``nnodes`` replicated sites plus partition/primary bookkeeping.

    The cluster hooks the network's partition callbacks at
    construction, so fault-injector partition flips are accounted
    without any polling.
    """

    def __init__(self, env, nnodes, network):
        if nnodes < 1:
            raise ValueError("nnodes must be >= 1, got {}".format(nnodes))
        self.env = env
        self.nnodes = nnodes
        self.network = network
        self.sites = tuple(range(nnodes))
        self.primary = 0
        self.elections = 0
        network.on_partition = self._on_partition
        network.on_heal = self._on_heal
        self._partition_since = None
        self._partition_accum = 0.0
        self._isolated_since = {}
        self._isolated_accum = 0.0

    # -- topology queries ---------------------------------------------

    def home(self, txn):
        """The deterministic coordinator site for a transaction."""
        return (txn.tid - 1) % self.nnodes

    @property
    def partitioned(self):
        """True while a partition is active."""
        return self._partition_since is not None

    def component(self, site):
        """Sites currently reachable from *site* (including itself)."""
        state = self.network.partition_state
        if state is None:
            return frozenset(self.sites)
        return state.component(site)

    def in_majority(self, site):
        """True when *site* sits in a strict-majority component."""
        return 2 * len(self.component(site)) > self.nnodes

    def elect(self, new_primary):
        """Fail the primary over to *new_primary* (counted)."""
        self.primary = new_primary
        self.elections += 1

    # -- partition accounting -----------------------------------------

    def _on_partition(self, partition):
        now = self.env.now
        if self._partition_since is not None:
            # Re-partition without a heal: close the open intervals
            # first so accumulated time never double-counts.
            self._settle(now)
        self._partition_since = now
        majority = partition.majority(self.nnodes) or frozenset()
        for site in self.sites:
            if site not in majority:
                self._isolated_since[site] = now

    def _on_heal(self):
        self._settle(self.env.now)

    def _settle(self, now):
        if self._partition_since is not None:
            self._partition_accum += now - self._partition_since
            self._partition_since = None
        for site, since in self._isolated_since.items():
            self._isolated_accum += now - since
        self._isolated_since.clear()

    def partition_time(self, now):
        """Total time (so far) some partition has been active."""
        total = self._partition_accum
        if self._partition_since is not None:
            total += now - self._partition_since
        return total

    def isolated_site_time(self, now):
        """Total site-time (so far) spent outside the majority."""
        total = self._isolated_accum
        for since in self._isolated_since.values():
            total += now - since
        return total

    def availability(self, start, now):
        """Fraction of site-capacity in the majority over [start, now].

        ``1.0`` exactly when no partition ever fired, so multiplying
        it into the machine's availability leaves unpartitioned runs
        bit-identical.
        """
        horizon = now - start
        if horizon <= 0.0:
            return 1.0
        isolated = self.isolated_site_time(now)
        if isolated <= 0.0:
            return 1.0
        return max(0.0, 1.0 - isolated / (self.nnodes * horizon))
