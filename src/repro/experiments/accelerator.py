"""Analytic sweep accelerator: decide which grid cells to simulate.

Given one spec's configurations and their analytic predictions
(:mod:`repro.analytic.mva`), :func:`plan_sweep` partitions the
configuration indices into a *simulate* set and a *prune* set.  The
runner (``accelerator="analytic"`` in
:mod:`repro.experiments.runner`) simulates only the former and fills
the latter straight from the predictions, recording them in
``SweepStats.analytic_cells`` and journalling them with provenance
``"analytic"`` — they never enter the content-addressed result cache.

Pruning rule (per curve of the spec, i.e. per series key):

* **anchors** — the first and last x (the curve's endpoints) and the
  predicted optimum with both neighbours are always simulated: the
  paper's conclusions hang on the optimum's location, so it must come
  from the simulator, with the analytic model only steering where to
  look;
* **uncertainty** — cells whose prediction carries an
  :func:`~repro.analytic.mva.uncertainty_score` at or above
  ``uncertainty_threshold`` are simulated (the model itself flags the
  regimes where its approximations are stressed);
* **disagreement** — interior cells where the predicted curve
  disagrees with the linear interpolation of its neighbours by more
  than ``disagreement_threshold`` of the curve's range are simulated
  (high curvature is exactly where interpolation — and therefore the
  model — is least safe).

Everything else is pruned.  The rule is deterministic: same spec and
predictions, same plan.
"""

#: Predictions at or above this uncertainty score are simulated.
UNCERTAINTY_THRESHOLD = 0.5

#: Interior cells whose predicted value deviates from the neighbour
#: midpoint by more than this fraction of the curve's value range are
#: simulated.
DISAGREEMENT_THRESHOLD = 0.12


class AcceleratorPlan:
    """Outcome of :func:`plan_sweep` for one spec."""

    __slots__ = ("simulate", "pruned", "predictions")

    def __init__(self, simulate, pruned, predictions):
        self.simulate = frozenset(simulate)
        self.pruned = frozenset(pruned)
        self.predictions = predictions

    @property
    def total(self):
        return len(self.simulate) + len(self.pruned)

    @property
    def simulated_fraction(self):
        """Fraction of configurations the plan simulates."""
        return len(self.simulate) / self.total if self.total else 0.0

    def prediction_for(self, index):
        """The prediction standing in for pruned configuration *index*."""
        return self.predictions[index]


def plan_sweep(
    spec,
    configs,
    predictions,
    uncertainty_threshold=UNCERTAINTY_THRESHOLD,
    disagreement_threshold=DISAGREEMENT_THRESHOLD,
):
    """Partition *configs* (with aligned *predictions*) for *spec*.

    Returns an :class:`AcceleratorPlan`.  Curves with up to three
    points are simulated outright (nothing to interpolate between).
    """
    if len(configs) != len(predictions):
        raise ValueError(
            "predictions must align with configs ({} != {})".format(
                len(predictions), len(configs)
            )
        )
    keep = set()
    curves = {}
    for index, params in enumerate(configs):
        curves.setdefault(spec.series_key(params), []).append(index)
    for indices in curves.values():
        indices.sort(key=lambda i: getattr(configs[i], spec.x_field))
        if len(indices) <= 3:
            keep.update(indices)
            continue
        keep.add(indices[0])
        keep.add(indices[-1])
        values = [predictions[i].throughput for i in indices]
        optimum = max(range(len(indices)), key=lambda pos: values[pos])
        for pos in (optimum - 1, optimum, optimum + 1):
            if 0 <= pos < len(indices):
                keep.add(indices[pos])
        value_range = max(values) - min(values)
        for pos, index in enumerate(indices):
            if predictions[index].uncertainty >= uncertainty_threshold:
                keep.add(index)
            if 0 < pos < len(indices) - 1 and value_range > 0:
                midpoint = (values[pos - 1] + values[pos + 1]) / 2.0
                if abs(values[pos] - midpoint) > (
                    disagreement_threshold * value_range
                ):
                    keep.add(index)
    pruned = set(range(len(configs))) - keep
    return AcceleratorPlan(keep, pruned, list(predictions))
