"""Result persistence: CSV and JSON row storage."""

import csv
import json


def save_rows_csv(rows, path):
    """Write dict *rows* to *path* as CSV (union of keys, sorted)."""
    rows = list(rows)
    if not rows:
        raise ValueError("no rows to save")
    fieldnames = sorted({key for row in rows for key in row})
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path


def load_rows_csv(path):
    """Read rows written by :func:`save_rows_csv` (values as strings
    unless they parse as numbers)."""
    rows = []
    with open(path, newline="") as handle:
        for raw in csv.DictReader(handle):
            rows.append({key: _parse(value) for key, value in raw.items()})
    return rows


def save_rows_json(rows, path, metadata=None):
    """Write rows (and optional metadata) to *path* as JSON."""
    document = {"rows": list(rows)}
    if metadata:
        document["metadata"] = dict(metadata)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=str)
    return path


def load_rows_json(path):
    """Read a document written by :func:`save_rows_json`."""
    with open(path) as handle:
        return json.load(handle)


def _parse(text):
    if text is None or text == "":
        return None
    for converter in (int, float):
        try:
            return converter(text)
        except ValueError:
            continue
    return text
