"""Experiment execution: replications, parallelism, caching, stats.

A sweep is a grid of ``(configuration, replication)`` cells; each cell
is one independent simulation run.  :func:`run_experiment` resolves as
many cells as it can from the content-addressed result cache
(:mod:`repro.experiments.cache`), fans the remaining cells out over a
process pool at *replication* granularity (not just configuration
granularity, so a single expensive configuration still parallelises),
and aggregates each configuration's replications in seed order —
which makes ``jobs=N`` bit-identical to an inline run.

:func:`run_experiments` generalises this to a *batch* of specs sharing
ONE global work queue: every (cell, replication) job of every spec is
collected up front, deduplicated by content address (figure specs that
share a parameter grid request the same cells — each unique cell is
simulated exactly once and delivered to all requesters), ordered
longest-expected-cell-first so the big cells start while small ones
backfill the stragglers, and executed on a single pool.  Journal
identity and cache keys are exactly those of the equivalent
per-spec :func:`run_experiment` calls, so resume and caching are
unaffected by batching.  :func:`run_experiment` is the one-spec
special case.

Crash-safety (all opt-in, see :func:`run_experiment`):

* a :class:`~repro.experiments.journal.SweepJournal` records every
  completed cell as it lands, so an interrupted sweep can be resumed
  (``resume=True``) and will re-read finished cells from the cache;
* a per-replication wall-clock *watchdog* raises
  :class:`~repro.des.errors.SimulationStalled` inside the worker, and
  a harness-level guard terminates workers that are too wedged even
  for that; killed cells are retried on a fresh pool with capped
  exponential backoff, bounded by ``watchdog_retries``;
* ``drain_signals=True`` converts SIGINT/SIGTERM into a graceful
  drain: in-flight cells finish (bounded), the journal is flushed,
  and ``KeyboardInterrupt`` is raised.

Execution accounting (per-configuration wall time, cache hit/miss
counts, resumed cells, watchdog restarts, total elapsed) is reported
through :class:`SweepStats`, available as ``result.stats`` on the
returned :class:`ExperimentResult`.
"""

import concurrent.futures
import os
import signal
from dataclasses import dataclass, field
from time import perf_counter, sleep
from time import time as wall_time

from repro.core.model import LockingGranularityModel
from repro.core.results import RESULT_FIELDS, aggregate
from repro.des.errors import SimulationStalled
from repro.experiments.cache import (
    ResultCache,
    cache_enabled,
    cache_key,
    result_from_document,
)
from repro.experiments.journal import SweepJournal, sweep_id
from repro.obs.manifest import build_manifest
from repro.obs.metrics import summarize_snapshot

#: Seconds a graceful drain waits for in-flight cells before the pool
#: is terminated anyway (the journal is flushed either way).
DRAIN_GRACE_SECONDS = 10.0

#: Backoff before retrying cells whose workers were killed: doubles per
#: retry round, capped here.
_RETRY_BACKOFF_BASE = 0.5
_RETRY_BACKOFF_CAP = 5.0


class SweepStalled(RuntimeError):
    """A sweep cell kept exceeding its watchdog after every retry."""


def _run_single(params):
    """Module-level worker so process pools can pickle it."""
    return LockingGranularityModel(params).run()


def _run_single_timed(
    params, timeout=None, collect=False, fault_plan=None, backoff=None
):
    """Worker returning ``(result, compute_seconds)`` for stats.

    *timeout* is the per-replication wall-clock watchdog, enforced
    inside the simulation kernel (see
    :meth:`repro.des.engine.Environment.run`).

    With ``collect=True`` (a metrics-enabled sweep) the cell runs
    against a fresh in-worker
    :class:`~repro.obs.metrics.MetricsRegistry` and the return value
    grows to ``(result, compute_seconds, metrics_snapshot)``; the
    parent merges the snapshot into its live registry.  The two-tuple
    shape is preserved for plain sweeps so existing callers (and test
    doubles) are unaffected.

    *fault_plan* / *backoff* (picklable) ride along to the model for
    faulted or backoff-ablation sweeps; both default to ``None`` and
    plain sweeps keep the historical two-argument call shape.
    """
    started = perf_counter()
    if not collect:
        result = LockingGranularityModel(
            params, fault_plan=fault_plan, backoff=backoff
        ).run(timeout=timeout)
        return result, perf_counter() - started
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    result = LockingGranularityModel(
        params,
        metrics_registry=registry,
        fault_plan=fault_plan,
        backoff=backoff,
    ).run(timeout=timeout)
    return result, perf_counter() - started, registry.snapshot()


def _retry_backoff(round_index):
    """Capped exponential backoff before retry round *round_index*."""
    return min(_RETRY_BACKOFF_BASE * (2.0 ** (round_index - 1)), _RETRY_BACKOFF_CAP)


class _SignalDrain:
    """Flag-setting SIGINT/SIGTERM handler for graceful sweep draining.

    Installing it outside the main thread is a silent no-op
    (``tripped`` then simply never trips), so pooled sweeps stay
    usable from worker threads.
    """

    def __init__(self):
        self.tripped = False
        self._previous = {}

    def install(self):
        """Swap in the flag-setting handler; returns self."""
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                self._previous[signum] = signal.signal(signum, self._handle)
        except ValueError:
            self._previous = {}
        return self

    def restore(self):
        """Put the previous handlers back."""
        for signum, handler in self._previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, TypeError):
                pass
        self._previous = {}

    def _handle(self, signum, frame):
        self.tripped = True


def _terminate_pool(pool):
    """Hard-kill a process pool's workers (they are wedged)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except OSError:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class ConfigStats:
    """Execution accounting for one configuration of a sweep."""

    index: int
    label: str
    runs: int = 0
    cache_hits: int = 0
    seconds: float = 0.0


@dataclass
class SweepStats:
    """Execution accounting for one :func:`run_experiment` call.

    Attributes
    ----------
    configs / replications:
        Shape of the sweep: ``configs * replications`` total cells.
    runs:
        Cells actually simulated (= cache misses that completed).
    cache_hits / cache_misses:
        Cache lookup outcomes; the two always partition the cells
        (with caching disabled every cell counts as a miss), and
        ``cache_misses == runs`` after a successful sweep.
    elapsed_seconds:
        Wall time of the whole call, queueing and aggregation
        included.
    per_config:
        One :class:`ConfigStats` per configuration, in sweep order;
        ``seconds`` there is summed simulation compute time (across
        workers), not wall time.
    """

    configs: int = 0
    replications: int = 1
    runs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    per_config: list = field(default_factory=list)
    #: Cache hits that a resumed journal had already recorded as done
    #: — the share of this sweep completed by the interrupted run.
    resumed: int = 0
    #: Cells whose worker was killed (or stalled) and re-queued.
    watchdog_restarts: int = 0
    #: Summed seconds this sweep's simulated cells spent between being
    #: submitted to the global work queue and starting to compute
    #: (includes pool hand-off overhead; 0.0 for inline runs).
    queue_wait_seconds: float = 0.0
    #: Fraction of worker capacity kept busy while the queue drained:
    #: summed compute seconds / (workers x execution wall time).
    #: Shared by every spec of a batched :func:`run_experiments` call.
    occupancy: float = 0.0
    #: Worker processes the queue ran on (1 = inline execution,
    #: 0 = every cell answered from the cache).
    workers: int = 0
    #: Cells filled from the analytic model instead of simulation
    #: (``accelerator="analytic"``); they are journalled with
    #: provenance ``"analytic"`` and never written to the cache, and
    #: count toward neither ``cache_hits`` nor ``cache_misses``.
    analytic_cells: int = 0
    #: The accelerator mode used (``None`` for a plain sweep).
    accelerator: str = None

    @property
    def cells(self):
        """Total (configuration, replication) cells in the sweep."""
        return self.configs * self.replications

    @property
    def hit_rate(self):
        """Fraction of cells answered from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def pruned_fraction(self):
        """Fraction of cells the accelerator filled analytically."""
        return self.analytic_cells / self.cells if self.cells else 0.0

    def summary(self):
        """One-line human summary for CLI/script output."""
        line = (
            "{} configs x {} replications: {} simulated, "
            "{} cache hits ({:.0%} hit rate) in {:.2f}s".format(
                self.configs,
                self.replications,
                self.runs,
                self.cache_hits,
                self.hit_rate,
                self.elapsed_seconds,
            )
        )
        if self.analytic_cells:
            line += ", {} analytic ({:.0%} pruned)".format(
                self.analytic_cells, self.pruned_fraction
            )
        return line


class ExperimentResult:
    """All rows of one executed spec.

    Attributes
    ----------
    spec:
        The :class:`~repro.experiments.config.ExperimentSpec` run.
    outcomes:
        One :class:`~repro.core.results.ReplicatedResult` per
        configuration, in sweep order.
    stats:
        The :class:`SweepStats` of the run that produced the outcomes
        (``None`` for results assembled by hand).
    """

    def __init__(self, spec, outcomes, stats=None):
        self.spec = spec
        self.outcomes = list(outcomes)
        self.stats = stats

    def __len__(self):
        return len(self.outcomes)

    def rows(self):
        """Flat dicts (parameters + mean outputs) for persistence."""
        return [outcome.as_dict() for outcome in self.outcomes]

    def series(self, y_field=None):
        """Curves: mapping series label → list of (x, y) sorted by x.

        *y_field* defaults to the spec's first y field.
        """
        y_field = y_field or self.spec.y_fields[0]
        curves = {}
        for outcome in self.outcomes:
            label = self.spec.series_label(outcome.params)
            x = getattr(outcome.params, self.spec.x_field)
            curves.setdefault(label, []).append((x, outcome.mean(y_field)))
        for points in curves.values():
            points.sort()
        return curves

    def optimum(self, series_label=None, y_field=None, maximize=True):
        """(x, y) at the best y for one curve (or the first curve)."""
        curves = self.series(y_field)
        if series_label is None:
            series_label = next(iter(curves))
        points = curves[series_label]
        chooser = max if maximize else min
        return chooser(points, key=lambda point: point[1])


def _resolve_cache(cache):
    """Normalise the *cache* argument of :func:`run_experiment`."""
    if cache is None:
        return ResultCache() if cache_enabled() else None
    if cache is False:
        return None
    return cache


def _config_label(spec, params):
    """Short human label of one configuration for stats output."""
    parts = ["{}={}".format(spec.x_field, getattr(params, spec.x_field))]
    series = spec.series_label(params)
    if series != "all":
        parts.append(series)
    return ", ".join(parts)


def _job_cost(params):
    """Expected relative cost of one cell, for queue ordering.

    Simulated horizon x terminals x transaction-size cap tracks the
    event count well enough for longest-first scheduling; it only has
    to rank cells, not predict seconds.
    """
    return params.tmax * params.npros * params.ntrans


class _Job:
    """One unique pending cell of the global work queue.

    ``requesters`` lists every ``(context, config, replication)`` that
    asked for this cell's content address; the first one is *primary*
    and owns the compute-time accounting and the cache write.
    """

    __slots__ = ("seq", "run_params", "key", "cost", "requesters")

    def __init__(self, seq, run_params, key):
        self.seq = seq
        self.run_params = run_params
        self.key = key
        self.cost = _job_cost(run_params)
        self.requesters = []


class _SweepContext:
    """Mutable per-spec state while a batch of sweeps executes."""

    __slots__ = (
        "spec",
        "index",
        "configs",
        "stats",
        "outcomes",
        "grid",
        "remaining",
        "cells",
        "journal",
        "journaled",
        "resumed_results",
        "analytic",
    )

    def __init__(self, spec, replications, index):
        self.spec = spec
        self.index = index
        self.configs = spec.configurations()
        self.stats = SweepStats(
            configs=len(self.configs), replications=replications
        )
        self.outcomes = [None] * len(self.configs)
        self.grid = [[None] * replications for _ in self.configs]
        self.remaining = [replications] * len(self.configs)
        self.journal = None
        self.journaled = set()
        #: cell key -> inline output dict read back from a resumed
        #: faulted journal (results that never touched the cache).
        self.resumed_results = {}
        #: config index -> AnalyticPrediction for pruned configurations
        #: (populated only under ``accelerator="analytic"``).
        self.analytic = {}
        # Materialise every cell (with its content address) up front:
        # the ordered addresses identify this sweep for the journal.
        self.cells = []  # (config_index, replication_index, params, key)
        for i, params in enumerate(self.configs):
            self.stats.per_config.append(
                ConfigStats(index=i, label=_config_label(spec, params))
            )
            for r in range(replications):
                run_params = params.replace(seed=params.seed + r)
                self.cells.append((i, r, run_params, cache_key(run_params)))


def run_experiment(
    spec,
    replications=1,
    jobs=None,
    progress=None,
    cache=None,
    refresh=False,
    cell_progress=None,
    manifests=True,
    journal=None,
    resume=False,
    watchdog=None,
    watchdog_retries=2,
    drain_signals=False,
    accelerator=None,
    metrics=None,
    metrics_snapshot=None,
    fault_plan=None,
    backoff=None,
):
    """Execute every configuration of *spec*.

    Parameters
    ----------
    spec:
        The experiment definition.
    replications:
        Independent replications per configuration (seeds increment).
    jobs:
        Worker processes; ``None``/0/1 runs inline, otherwise a
        process pool fans individual replication runs out.  Results
        are aggregated in seed order either way, so ``jobs=N`` is
        bit-identical to an inline run.
    progress:
        Optional callable ``progress(done, total)`` invoked whenever a
        configuration (all its replications) finishes.
    cache:
        ``None`` uses the default on-disk cache (``results/.cache``;
        honour ``REPRO_CACHE_DIR``, disable globally with
        ``REPRO_CACHE=0``); ``False`` bypasses caching entirely; a
        :class:`~repro.experiments.cache.ResultCache` instance is used
        as given.
    refresh:
        Ignore existing cache entries, re-simulate everything and
        overwrite them (the ``--refresh`` escape hatch).
    cell_progress:
        Optional callable ``cell_progress(done, total, info)`` invoked
        once per (configuration, replication) cell as it resolves —
        cache hits during the initial scan, simulated runs as they
        complete (in completion order under a pool).  *info* is a dict
        with ``config`` (index), ``replication``, ``label``,
        ``source`` (``"cache"`` or ``"run"``) and ``seconds``
        (compute time; ``None`` for hits).  This is the live-progress
        hook: a long sweep reports every finished replication instead
        of going dark until a whole configuration completes.
    manifests:
        When caching is active, write a provenance manifest (params
        hash, seed, git SHA, model version, wall time — see
        :mod:`repro.obs.manifest`) next to every newly stored result.
    journal:
        Optional :class:`~repro.experiments.journal.SweepJournal` (or
        a path string) recording every completed cell as it lands —
        the crash-safety log that makes *resume* possible.
    resume:
        Reuse a journal left by an interrupted run of the *same*
        sweep: previously journalled cells resolve from the cache and
        are counted in ``stats.resumed``.  A journal belonging to a
        different sweep is discarded automatically.
    watchdog:
        Per-replication wall-clock budget in seconds.  Enforced
        inside each worker via the kernel's run-loop timeout, plus a
        harness-level guard that terminates a pool making no progress
        for well past that budget; killed cells are retried on a
        fresh pool with capped backoff.
    watchdog_retries:
        Times one cell may be retried after stalling before the sweep
        fails with :class:`SweepStalled`.
    drain_signals:
        Convert SIGINT/SIGTERM into a graceful drain: stop submitting
        work, let in-flight cells finish (bounded by
        :data:`DRAIN_GRACE_SECONDS`), flush the journal, then raise
        ``KeyboardInterrupt``.
    accelerator:
        ``"analytic"`` prunes the sweep with the mean-value model
        (:mod:`repro.analytic.mva`): only the cells the
        :mod:`~repro.experiments.accelerator` plan marks — curve
        endpoints, the predicted optimum and its neighbours,
        high-uncertainty and high-curvature cells — are simulated;
        the rest are filled from predictions, counted in
        ``stats.analytic_cells``, journalled with provenance
        ``"analytic"``, and **never** written to the result cache (so
        default-sweep cache contents stay byte-identical whether or
        not the accelerator was ever used).  ``None`` (default)
        simulates every cell.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`: the
        sweep harness updates live progress gauges/counters on it
        (cells by source, queue depth, occupancy, worker heartbeat,
        cache traffic, journal lag), every simulated cell runs
        instrumented in its worker, and the per-cell snapshots merge
        back in — giving live lock-wait histograms per granularity.
        Instrumentation never perturbs results (pinned by test).
    metrics_snapshot:
        Optional path for periodic JSON snapshot files of *metrics*
        (atomic replace, rate-limited; see
        :class:`repro.obs.exporters.SnapshotWriter`) — what
        ``repro-locking top`` tails next to the journal.  Ignored
        without *metrics*.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` applied to
        every cell (chaos sweeps).  A faulted run is no longer the
        pure function of its parameters the result cache addresses,
        so an enabled plan forces ``cache = None`` — faulted sweeps
        never read from nor write to the cache.  Instead, each cell's
        full output record is journalled inline (when a journal is
        given) and resume reconstructs results from the journal;
        the JSON float round-trip is exact, so a resumed faulted
        sweep is bit-identical to an uninterrupted one.  The plan's
        :meth:`~repro.faults.plan.FaultPlan.digest` is folded into
        the sweep identity, so journals from different plans never
        cross-resume.
    backoff:
        Optional :class:`~repro.faults.backoff.BackoffPolicy`
        overriding the model's default restart backoff (ablations).
        Like *fault_plan*, a non-default policy disables the cache
        for the whole call.

    Raises
    ------
    Exception
        The first worker exception is re-raised in the caller after
        outstanding pool work is cancelled; ``outcomes`` are never
        returned with ``None`` holes.
    SweepStalled
        A cell exceeded *watchdog* on its initial run and on every
        retry.
    KeyboardInterrupt
        With *drain_signals*, after a signal-triggered drain has
        flushed the journal.
    """
    return run_experiments(
        [spec],
        replications=replications,
        jobs=jobs,
        progress=progress,
        cache=cache,
        refresh=refresh,
        cell_progress=cell_progress,
        manifests=manifests,
        journals=[journal],
        resume=resume,
        watchdog=watchdog,
        watchdog_retries=watchdog_retries,
        drain_signals=drain_signals,
        accelerator=accelerator,
        metrics=metrics,
        metrics_snapshot=metrics_snapshot,
        fault_plan=fault_plan,
        backoff=backoff,
    )[0]


def run_experiments(
    specs,
    replications=1,
    jobs=None,
    progress=None,
    cache=None,
    refresh=False,
    cell_progress=None,
    manifests=True,
    journals=None,
    resume=False,
    watchdog=None,
    watchdog_retries=2,
    drain_signals=False,
    accelerator=None,
    metrics=None,
    metrics_snapshot=None,
    fault_plan=None,
    backoff=None,
):
    """Execute a batch of specs over ONE global work queue.

    Every parameter keeps its :func:`run_experiment` meaning; the
    differences of the batched form are:

    * *journals* is a list aligned with *specs* (``None`` entries for
      specs that should not be journalled); each spec keeps its own
      journal identity, exactly as if it had been run alone.
    * cells shared between specs (same content address — e.g. figure
      grids that overlap) are simulated once and delivered to every
      requesting spec.  The first requester is reported with source
      ``"run"`` and owns the cache write; the others see source
      ``"shared"``.  Both count toward ``stats.runs`` so
      ``cache_misses == runs`` holds per spec.
    * pending cells are ordered longest-expected-cell-first
      (``tmax * npros * ntrans``), so expensive cells start early and
      cheap ones backfill idle workers near the end of the queue.
    * ``progress(done, total)`` / ``cell_progress(done, total, info)``
      count globally across the batch, and *info* gains a ``"spec"``
      key with the requesting spec's key.

    Returns a list of :class:`ExperimentResult`, aligned with *specs*.
    """
    if replications < 1:
        raise ValueError(
            "replications must be >= 1, got {}".format(replications)
        )
    specs = list(specs)
    if journals is None:
        journals = [None] * len(specs)
    if len(journals) != len(specs):
        raise ValueError(
            "journals must align with specs ({} != {})".format(
                len(journals), len(specs)
            )
        )
    if accelerator not in (None, "analytic"):
        raise ValueError(
            "unknown accelerator {!r}; supported: 'analytic'".format(
                accelerator
            )
        )
    started = perf_counter()
    if fault_plan is not None and not fault_plan.enabled():
        fault_plan = None  # an empty plan is the unfaulted path
    faulted = fault_plan is not None
    if faulted or backoff is not None:
        # Faulted / backoff-ablation results are not the pure function
        # of the parameters the cache addresses: never read from nor
        # write to it.  Faulted cells journal their outputs inline
        # instead (see SweepJournal), which is what resume reads back.
        cache = None
    else:
        cache = _resolve_cache(cache)
    if faulted and accelerator is not None:
        raise ValueError(
            "the analytic accelerator models the unfaulted system and "
            "cannot prune a faulted sweep"
        )
    contexts = [
        _SweepContext(spec, replications, index)
        for index, spec in enumerate(specs)
    ]
    if accelerator == "analytic":
        from repro.analytic.mva import predict_grid
        from repro.experiments.accelerator import plan_sweep

        for ctx in contexts:
            predictions = predict_grid(ctx.configs)
            plan = plan_sweep(ctx.spec, ctx.configs, predictions)
            ctx.analytic = {
                index: plan.prediction_for(index) for index in plan.pruned
            }
            ctx.stats.accelerator = accelerator
    total_cells = sum(len(ctx.cells) for ctx in contexts)
    total_configs = sum(len(ctx.configs) for ctx in contexts)
    done_cells = 0
    done_configs = 0
    sweep_inst = None
    snapshot_writer = None
    if metrics is not None:
        from repro.obs.exporters import SnapshotWriter
        from repro.obs.metrics import SweepInstruments

        sweep_inst = SweepInstruments(metrics)
        sweep_inst.cells_total.set(total_cells)
        sweep_inst.cells_pending.set(total_cells)
        if metrics_snapshot is not None:
            snapshot_writer = SnapshotWriter(metrics_snapshot, metrics)
    #: Cells of journalled specs resolved / accounted for on disk —
    #: their difference is the live journal-lag gauge (0 = in sync).
    journal_done = 0
    journalled = 0

    def notify_cell(ctx, i, r, source, seconds=None):
        nonlocal done_cells, journal_done
        done_cells += 1
        if ctx.journal is not None:
            journal_done += 1
        if sweep_inst is not None:
            sweep_inst.note_cell(
                source, done_cells, total_cells - done_cells, wall_time()
            )
            if source == "cache":
                sweep_inst.cache_hits.inc()
            elif source == "run":
                sweep_inst.cache_misses.inc()
            sweep_inst.journal_lag.set(max(0, journal_done - journalled))
            if snapshot_writer is not None:
                snapshot_writer.maybe_write()
        if cell_progress is not None:
            cell_progress(
                done_cells,
                total_cells,
                {
                    "spec": getattr(ctx.spec, "key", ctx.index),
                    "config": i,
                    "replication": r,
                    "label": ctx.stats.per_config[i].label,
                    "source": source,
                    "seconds": seconds,
                },
            )

    def finish_config(ctx, i):
        nonlocal done_configs
        prediction = ctx.analytic.get(i)
        # A pruned configuration's outcome IS its prediction (it
        # mimics the ReplicatedResult read surface); everything else
        # aggregates its simulated/cached replications as usual.
        ctx.outcomes[i] = (
            prediction if prediction is not None else aggregate(ctx.grid[i])
        )
        done_configs += 1
        if progress is not None:
            progress(done_configs, total_configs)

    for ctx, journal in zip(contexts, journals):
        if isinstance(journal, (str, os.PathLike)):
            journal = SweepJournal(journal)
        ctx.journal = journal
        if journal is not None:
            # A faulted sweep's identity includes its fault plan, so a
            # journal written under one plan can never resume another.
            sid = sweep_id(
                [key for _, _, _, key in ctx.cells]
                + ([fault_plan.digest()] if faulted else [])
            )
            if resume:
                ctx.journaled = journal.load(sid)
                if faulted:
                    ctx.resumed_results = journal.load_results(sid)
            journal.begin(
                sid,
                len(ctx.cells),
                label=getattr(ctx.spec, "key", None),
                keep=resume,
            )

    # Cache scan, then the global queue: cells no spec could answer
    # from the cache become unique jobs, deduplicated by content
    # address across the whole batch.
    jobs_by_key = {}
    job_order = []
    for ctx in contexts:
        for i, r, run_params, key in ctx.cells:
            prediction = ctx.analytic.get(i)
            if prediction is not None:
                # Pruned by the accelerator: fill from the analytic
                # model.  No cache read, no cache write — predictions
                # must never masquerade as simulation results.
                ctx.grid[i][r] = prediction
                ctx.stats.analytic_cells += 1
                if ctx.journal is not None:
                    if key not in ctx.journaled:
                        ctx.journal.record(key, provenance="analytic")
                    journalled += 1
                notify_cell(ctx, i, r, "analytic")
                ctx.remaining[i] -= 1
                continue
            hit = None
            if cache is not None and not refresh:
                hit = cache.get(run_params)
            elif key in ctx.resumed_results and not refresh:
                # Faulted resume: rebuild the result from the journal's
                # inline output record (the cache never saw it).
                try:
                    hit = result_from_document(
                        run_params, ctx.resumed_results[key]
                    )
                except KeyError:
                    hit = None  # written before a field existed
            if hit is not None:
                ctx.grid[i][r] = hit
                config_stats = ctx.stats.per_config[i]
                config_stats.cache_hits += 1
                ctx.stats.cache_hits += 1
                if key in ctx.journaled:
                    ctx.stats.resumed += 1
                    journalled += 1
                elif ctx.journal is not None:
                    ctx.journal.record(key)
                    journalled += 1
                notify_cell(ctx, i, r, "cache")
                ctx.remaining[i] -= 1
            else:
                ctx.stats.cache_misses += 1
                job = jobs_by_key.get(key)
                if job is None:
                    job = _Job(len(job_order), run_params, key)
                    jobs_by_key[key] = job
                    job_order.append(job)
                job.requesters.append((ctx, i, r))

    # Configurations fully answered by the cache complete immediately,
    # in batch and sweep order.
    for ctx in contexts:
        for i in range(len(ctx.configs)):
            if ctx.remaining[i] == 0:
                finish_config(ctx, i)

    busy_seconds = 0.0
    jobs_remaining = 0
    #: Execution window state deliver() needs for the live occupancy
    #: gauge (populated once the worker count is chosen, below).
    exec_state = {"started": None, "workers": 0}

    def deliver(job, result, seconds, queue_wait, snapshot=None):
        nonlocal busy_seconds, jobs_remaining, journalled
        busy_seconds += seconds
        jobs_remaining -= 1
        if metrics is not None:
            metrics.merge_snapshot(snapshot)
        if sweep_inst is not None:
            sweep_inst.queue_depth.set(jobs_remaining)
            if exec_state["started"] is not None and exec_state["workers"]:
                window = perf_counter() - exec_state["started"]
                if window > 0.0:
                    sweep_inst.occupancy.set(
                        busy_seconds / (exec_state["workers"] * window)
                    )
        job.requesters[0][0].stats.queue_wait_seconds += queue_wait
        for rank, (ctx, i, r) in enumerate(job.requesters):
            ctx.grid[i][r] = result
            config_stats = ctx.stats.per_config[i]
            config_stats.runs += 1
            ctx.stats.runs += 1
            if rank == 0:
                config_stats.seconds += seconds
                if cache is not None:
                    cache.put(job.run_params, result)
                    if manifests:
                        cache.put_manifest(
                            job.run_params,
                            build_manifest(
                                job.run_params,
                                cache_hit=False,
                                wall_seconds=seconds,
                                model_version=cache.model_version,
                                metrics=(
                                    summarize_snapshot(snapshot)
                                    if snapshot is not None
                                    else None
                                ),
                            ),
                        )
            if ctx.journal is not None:
                if faulted:
                    # No cache to resume from: journal the full output
                    # record inline so a resumed faulted sweep is
                    # bit-identical to an uninterrupted one.
                    record = {
                        name: getattr(result, name)
                        for name in RESULT_FIELDS
                    }
                    if result.per_class:
                        record["per_class"] = [
                            dict(entry) for entry in result.per_class
                        ]
                    ctx.journal.record(job.key, result=record)
                else:
                    ctx.journal.record(job.key)
                journalled += 1
            notify_cell(
                ctx, i, r,
                "run" if rank == 0 else "shared",
                seconds if rank == 0 else None,
            )
            ctx.remaining[i] -= 1
            if ctx.remaining[i] == 0:
                finish_config(ctx, i)

    def mark_restart(job):
        for ctx, _, _ in job.requesters:
            ctx.stats.watchdog_restarts += 1

    # Longest-expected-first (stable, so ties keep enqueue order):
    # start the big cells immediately and let the cheap ones backfill
    # workers that free up while the stragglers finish.
    queue = sorted(job_order, key=lambda job: -job.cost)
    jobs_remaining = len(queue)
    if sweep_inst is not None:
        sweep_inst.queue_depth.set(jobs_remaining)

    if jobs is None:
        jobs = 0
    workers = 0
    collect = metrics is not None
    drain = _SignalDrain().install() if drain_signals else None
    exec_started = perf_counter()
    exec_state["started"] = exec_started
    try:
        if queue and jobs <= 1:
            workers = 1
            exec_state["workers"] = workers
            if sweep_inst is not None:
                sweep_inst.workers.set(workers)
            _run_inline(
                queue, deliver, mark_restart, drain, watchdog,
                watchdog_retries, collect, fault_plan, backoff,
            )
        elif queue:
            workers = min(jobs, os.cpu_count() or 1, len(queue)) or 1
            exec_state["workers"] = workers
            if sweep_inst is not None:
                sweep_inst.workers.set(workers)
            _run_pooled(
                queue,
                deliver,
                mark_restart,
                drain,
                watchdog,
                watchdog_retries,
                workers,
                collect,
                fault_plan,
                backoff,
            )
        for ctx in contexts:
            if ctx.journal is not None:
                ctx.journal.finish()
    finally:
        if drain is not None:
            drain.restore()
        for ctx in contexts:
            if ctx.journal is not None:
                ctx.journal.close()
        if snapshot_writer is not None:
            # Final state on disk even when the sweep died mid-run.
            snapshot_writer.maybe_write(force=True)
    exec_elapsed = perf_counter() - exec_started
    occupancy = 0.0
    if queue and workers and exec_elapsed > 0.0:
        occupancy = busy_seconds / (workers * exec_elapsed)
    elapsed = perf_counter() - started
    if sweep_inst is not None:
        sweep_inst.occupancy.set(occupancy)
        if snapshot_writer is not None:
            snapshot_writer.maybe_write(force=True)
    for ctx in contexts:
        ctx.stats.workers = workers
        ctx.stats.occupancy = occupancy
        ctx.stats.elapsed_seconds = elapsed
    return [
        ExperimentResult(ctx.spec, ctx.outcomes, stats=ctx.stats)
        for ctx in contexts
    ]


def _stalled_error(job, watchdog, attempts):
    """Uniform :class:`SweepStalled` for a job that kept timing out."""
    _, i, r = job.requesters[0]
    return SweepStalled(
        "cell (config={}, replication={}) exceeded the {}s watchdog "
        "after {} attempts".format(i, r, watchdog, attempts)
    )


def _run_inline(
    queue, deliver, mark_restart, drain, watchdog, watchdog_retries,
    collect=False, fault_plan=None, backoff=None,
):
    """Execute the job *queue* in this process, one job at a time."""
    extra = ()
    if collect or fault_plan is not None or backoff is not None:
        extra = (collect, fault_plan, backoff)
    for job in queue:
        if drain is not None and drain.tripped:
            raise KeyboardInterrupt
        attempt = 0
        while True:
            try:
                payload = _run_single_timed(job.run_params, watchdog, *extra)
                break
            except SimulationStalled:
                attempt += 1
                mark_restart(job)
                if attempt > watchdog_retries:
                    raise _stalled_error(job, watchdog, attempt) from None
                sleep(_retry_backoff(attempt))
        snapshot = payload[2] if len(payload) > 2 else None
        deliver(job, payload[0], payload[1], 0.0, snapshot)


def _run_pooled(
    queue, deliver, mark_restart, drain, watchdog, watchdog_retries,
    max_workers, collect=False, fault_plan=None, backoff=None,
):
    """Fan the job *queue* out over worker pools, retrying stalls.

    Each *round* runs the outstanding jobs on one pool.  Jobs that
    stall (in-worker watchdog) or whose workers are terminated by the
    harness-level guard are collected and re-run on a fresh pool in
    the next round, after a capped exponential backoff — up to
    *watchdog_retries* attempts per job, then :class:`SweepStalled`.
    """
    attempts = {}
    outstanding = list(queue)
    round_index = 0
    while outstanding:
        if round_index:
            sleep(_retry_backoff(round_index))
        outstanding = _pool_round(
            outstanding,
            deliver,
            mark_restart,
            drain,
            watchdog,
            watchdog_retries,
            max_workers,
            attempts,
            collect,
            fault_plan,
            backoff,
        )
        round_index += 1


def _pool_round(
    queue,
    deliver,
    mark_restart,
    drain,
    watchdog,
    watchdog_retries,
    max_workers,
    attempts,
    collect=False,
    fault_plan=None,
    backoff=None,
):
    """Run one pool over the job *queue*; returns the jobs to retry."""
    retry = []

    def mark_stalled(job):
        mark_restart(job)
        attempts[job.seq] = attempts.get(job.seq, 0) + 1
        if attempts[job.seq] > watchdog_retries:
            raise _stalled_error(job, watchdog, attempts[job.seq])
        retry.append(job)

    pool = concurrent.futures.ProcessPoolExecutor(
        max_workers=min(max_workers, len(queue))
    )
    futures = {}
    submitted = {}
    extra = ()
    if collect or fault_plan is not None or backoff is not None:
        extra = (collect, fault_plan, backoff)
    for job in queue:
        future = pool.submit(
            _run_single_timed, job.run_params, watchdog, *extra
        )
        futures[future] = job
        submitted[future] = perf_counter()
    not_done = set(futures)
    # The harness guard only fires when workers are wedged past the
    # in-worker timeout (e.g. stuck outside the run loop), so it sits
    # well above the watchdog itself.
    hard_limit = None if watchdog is None else max(2.0 * watchdog, watchdog + 5.0)
    needs_polling = watchdog is not None or drain is not None
    last_progress = perf_counter()
    draining_since = None
    try:
        while not_done:
            if drain is not None and drain.tripped and draining_since is None:
                draining_since = perf_counter()
                for future in not_done:
                    future.cancel()
            done, not_done = concurrent.futures.wait(
                not_done,
                timeout=0.2 if needs_polling else None,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            for future in done:
                if future.cancelled():
                    continue  # drained before it started
                job = futures[future]
                try:
                    payload = future.result()
                except SimulationStalled:
                    mark_stalled(job)
                else:
                    seconds = payload[1]
                    # Queue wait is measured parent-side (the worker
                    # function stays the plain picklable
                    # _run_single_timed): time from submission to the
                    # result landing, minus the compute itself.  That
                    # includes pool hand-off overhead, which is exactly
                    # the idle cost occupancy should see.
                    wait = max(
                        0.0,
                        perf_counter() - submitted[future] - seconds,
                    )
                    snapshot = payload[2] if len(payload) > 2 else None
                    deliver(job, payload[0], seconds, wait, snapshot)
                last_progress = perf_counter()
            if draining_since is not None:
                if (
                    not not_done
                    or perf_counter() - draining_since > DRAIN_GRACE_SECONDS
                ):
                    _terminate_pool(pool)
                    raise KeyboardInterrupt
                continue
            if (
                hard_limit is not None
                and not_done
                and not done
                and perf_counter() - last_progress > hard_limit
            ):
                # No completion for well past the in-worker budget:
                # the workers are wedged.  Kill them and re-queue
                # whatever they were running on a fresh pool.
                _terminate_pool(pool)
                for future in not_done:
                    mark_stalled(futures[future])
                return retry
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return retry
