"""Experiment execution: replications, parallelism, result shaping."""

import concurrent.futures
import os

from repro.core.model import LockingGranularityModel
from repro.core.results import aggregate


def _run_single(params):
    """Module-level worker so process pools can pickle it."""
    return LockingGranularityModel(params).run()


def _run_replicated(params, replications):
    results = []
    for i in range(replications):
        results.append(_run_single(params.replace(seed=params.seed + i)))
    return aggregate(results)


class ExperimentResult:
    """All rows of one executed spec.

    Attributes
    ----------
    spec:
        The :class:`~repro.experiments.config.ExperimentSpec` run.
    outcomes:
        One :class:`~repro.core.results.ReplicatedResult` per
        configuration, in sweep order.
    """

    def __init__(self, spec, outcomes):
        self.spec = spec
        self.outcomes = list(outcomes)

    def __len__(self):
        return len(self.outcomes)

    def rows(self):
        """Flat dicts (parameters + mean outputs) for persistence."""
        return [outcome.as_dict() for outcome in self.outcomes]

    def series(self, y_field=None):
        """Curves: mapping series label → list of (x, y) sorted by x.

        *y_field* defaults to the spec's first y field.
        """
        y_field = y_field or self.spec.y_fields[0]
        curves = {}
        for outcome in self.outcomes:
            label = self.spec.series_label(outcome.params)
            x = getattr(outcome.params, self.spec.x_field)
            curves.setdefault(label, []).append((x, outcome.mean(y_field)))
        for points in curves.values():
            points.sort()
        return curves

    def optimum(self, series_label=None, y_field=None, maximize=True):
        """(x, y) at the best y for one curve (or the first curve)."""
        curves = self.series(y_field)
        if series_label is None:
            series_label = next(iter(curves))
        points = curves[series_label]
        chooser = max if maximize else min
        return chooser(points, key=lambda point: point[1])


def run_experiment(spec, replications=1, jobs=None, progress=None):
    """Execute every configuration of *spec*.

    Parameters
    ----------
    spec:
        The experiment definition.
    replications:
        Independent replications per configuration (seeds increment).
    jobs:
        Worker processes; ``None``/0/1 runs inline, otherwise a
        process pool fans configurations out (each configuration's
        replications stay together so common-random-number pairing is
        preserved).
    progress:
        Optional callable ``progress(done, total)`` invoked after each
        configuration finishes.
    """
    configs = spec.configurations()
    total = len(configs)
    outcomes = [None] * total
    if jobs is None:
        jobs = 0
    if jobs in (0, 1):
        for i, params in enumerate(configs):
            outcomes[i] = _run_replicated(params, replications)
            if progress is not None:
                progress(i + 1, total)
        return ExperimentResult(spec, outcomes)
    max_workers = min(jobs, os.cpu_count() or 1, total) or 1
    with concurrent.futures.ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            pool.submit(_run_replicated, params, replications): i
            for i, params in enumerate(configs)
        }
        done = 0
        for future in concurrent.futures.as_completed(futures):
            outcomes[futures[future]] = future.result()
            done += 1
            if progress is not None:
                progress(done, total)
    return ExperimentResult(spec, outcomes)
