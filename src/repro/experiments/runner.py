"""Experiment execution: replications, parallelism, caching, stats.

A sweep is a grid of ``(configuration, replication)`` cells; each cell
is one independent simulation run.  :func:`run_experiment` resolves as
many cells as it can from the content-addressed result cache
(:mod:`repro.experiments.cache`), fans the remaining cells out over a
process pool at *replication* granularity (not just configuration
granularity, so a single expensive configuration still parallelises),
and aggregates each configuration's replications in seed order —
which makes ``jobs=N`` bit-identical to an inline run.

Execution accounting (per-configuration wall time, cache hit/miss
counts, total elapsed) is reported through :class:`SweepStats`,
available as ``result.stats`` on the returned
:class:`ExperimentResult`.
"""

import concurrent.futures
import os
from dataclasses import dataclass, field
from time import perf_counter

from repro.core.model import LockingGranularityModel
from repro.core.results import aggregate
from repro.experiments.cache import ResultCache, cache_enabled
from repro.obs.manifest import build_manifest


def _run_single(params):
    """Module-level worker so process pools can pickle it."""
    return LockingGranularityModel(params).run()


def _run_single_timed(params):
    """Worker returning ``(result, compute_seconds)`` for stats."""
    started = perf_counter()
    result = LockingGranularityModel(params).run()
    return result, perf_counter() - started


@dataclass
class ConfigStats:
    """Execution accounting for one configuration of a sweep."""

    index: int
    label: str
    runs: int = 0
    cache_hits: int = 0
    seconds: float = 0.0


@dataclass
class SweepStats:
    """Execution accounting for one :func:`run_experiment` call.

    Attributes
    ----------
    configs / replications:
        Shape of the sweep: ``configs * replications`` total cells.
    runs:
        Cells actually simulated (= cache misses that completed).
    cache_hits / cache_misses:
        Cache lookup outcomes; the two always partition the cells
        (with caching disabled every cell counts as a miss), and
        ``cache_misses == runs`` after a successful sweep.
    elapsed_seconds:
        Wall time of the whole call, queueing and aggregation
        included.
    per_config:
        One :class:`ConfigStats` per configuration, in sweep order;
        ``seconds`` there is summed simulation compute time (across
        workers), not wall time.
    """

    configs: int = 0
    replications: int = 1
    runs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    per_config: list = field(default_factory=list)

    @property
    def cells(self):
        """Total (configuration, replication) cells in the sweep."""
        return self.configs * self.replications

    @property
    def hit_rate(self):
        """Fraction of cells answered from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def summary(self):
        """One-line human summary for CLI/script output."""
        return (
            "{} configs x {} replications: {} simulated, "
            "{} cache hits ({:.0%} hit rate) in {:.2f}s".format(
                self.configs,
                self.replications,
                self.runs,
                self.cache_hits,
                self.hit_rate,
                self.elapsed_seconds,
            )
        )


class ExperimentResult:
    """All rows of one executed spec.

    Attributes
    ----------
    spec:
        The :class:`~repro.experiments.config.ExperimentSpec` run.
    outcomes:
        One :class:`~repro.core.results.ReplicatedResult` per
        configuration, in sweep order.
    stats:
        The :class:`SweepStats` of the run that produced the outcomes
        (``None`` for results assembled by hand).
    """

    def __init__(self, spec, outcomes, stats=None):
        self.spec = spec
        self.outcomes = list(outcomes)
        self.stats = stats

    def __len__(self):
        return len(self.outcomes)

    def rows(self):
        """Flat dicts (parameters + mean outputs) for persistence."""
        return [outcome.as_dict() for outcome in self.outcomes]

    def series(self, y_field=None):
        """Curves: mapping series label → list of (x, y) sorted by x.

        *y_field* defaults to the spec's first y field.
        """
        y_field = y_field or self.spec.y_fields[0]
        curves = {}
        for outcome in self.outcomes:
            label = self.spec.series_label(outcome.params)
            x = getattr(outcome.params, self.spec.x_field)
            curves.setdefault(label, []).append((x, outcome.mean(y_field)))
        for points in curves.values():
            points.sort()
        return curves

    def optimum(self, series_label=None, y_field=None, maximize=True):
        """(x, y) at the best y for one curve (or the first curve)."""
        curves = self.series(y_field)
        if series_label is None:
            series_label = next(iter(curves))
        points = curves[series_label]
        chooser = max if maximize else min
        return chooser(points, key=lambda point: point[1])


def _resolve_cache(cache):
    """Normalise the *cache* argument of :func:`run_experiment`."""
    if cache is None:
        return ResultCache() if cache_enabled() else None
    if cache is False:
        return None
    return cache


def _config_label(spec, params):
    """Short human label of one configuration for stats output."""
    parts = ["{}={}".format(spec.x_field, getattr(params, spec.x_field))]
    series = spec.series_label(params)
    if series != "all":
        parts.append(series)
    return ", ".join(parts)


def run_experiment(
    spec,
    replications=1,
    jobs=None,
    progress=None,
    cache=None,
    refresh=False,
    cell_progress=None,
    manifests=True,
):
    """Execute every configuration of *spec*.

    Parameters
    ----------
    spec:
        The experiment definition.
    replications:
        Independent replications per configuration (seeds increment).
    jobs:
        Worker processes; ``None``/0/1 runs inline, otherwise a
        process pool fans individual replication runs out.  Results
        are aggregated in seed order either way, so ``jobs=N`` is
        bit-identical to an inline run.
    progress:
        Optional callable ``progress(done, total)`` invoked whenever a
        configuration (all its replications) finishes.
    cache:
        ``None`` uses the default on-disk cache (``results/.cache``;
        honour ``REPRO_CACHE_DIR``, disable globally with
        ``REPRO_CACHE=0``); ``False`` bypasses caching entirely; a
        :class:`~repro.experiments.cache.ResultCache` instance is used
        as given.
    refresh:
        Ignore existing cache entries, re-simulate everything and
        overwrite them (the ``--refresh`` escape hatch).
    cell_progress:
        Optional callable ``cell_progress(done, total, info)`` invoked
        once per (configuration, replication) cell as it resolves —
        cache hits during the initial scan, simulated runs as they
        complete (in completion order under a pool).  *info* is a dict
        with ``config`` (index), ``replication``, ``label``,
        ``source`` (``"cache"`` or ``"run"``) and ``seconds``
        (compute time; ``None`` for hits).  This is the live-progress
        hook: a long sweep reports every finished replication instead
        of going dark until a whole configuration completes.
    manifests:
        When caching is active, write a provenance manifest (params
        hash, seed, git SHA, model version, wall time — see
        :mod:`repro.obs.manifest`) next to every newly stored result.

    Raises
    ------
    Exception
        The first worker exception is re-raised in the caller after
        outstanding pool work is cancelled; ``outcomes`` are never
        returned with ``None`` holes.
    """
    if replications < 1:
        raise ValueError(
            "replications must be >= 1, got {}".format(replications)
        )
    started = perf_counter()
    configs = spec.configurations()
    total = len(configs)
    cache = _resolve_cache(cache)
    stats = SweepStats(configs=total, replications=replications)
    outcomes = [None] * total

    # Grid of single-run results, one row per configuration, one
    # column per replication; filled from the cache first, then from
    # execution.
    total_cells = total * replications
    done_cells = 0

    def notify_cell(i, r, source, seconds=None):
        nonlocal done_cells
        done_cells += 1
        if cell_progress is not None:
            cell_progress(
                done_cells,
                total_cells,
                {
                    "config": i,
                    "replication": r,
                    "label": stats.per_config[i].label,
                    "source": source,
                    "seconds": seconds,
                },
            )

    grid = [[None] * replications for _ in range(total)]
    pending = []  # (config_index, replication_index, run_params)
    for i, params in enumerate(configs):
        config_stats = ConfigStats(index=i, label=_config_label(spec, params))
        stats.per_config.append(config_stats)
        for r in range(replications):
            run_params = params.replace(seed=params.seed + r)
            hit = None
            if cache is not None and not refresh:
                hit = cache.get(run_params)
            if hit is not None:
                grid[i][r] = hit
                config_stats.cache_hits += 1
                stats.cache_hits += 1
                notify_cell(i, r, "cache")
            else:
                pending.append((i, r, run_params))
                stats.cache_misses += 1

    remaining = [row.count(None) for row in grid]
    done_configs = 0

    def finish_config(i):
        nonlocal done_configs
        outcomes[i] = aggregate(grid[i])
        done_configs += 1
        if progress is not None:
            progress(done_configs, total)

    def record(i, r, run_params, result, seconds):
        grid[i][r] = result
        config_stats = stats.per_config[i]
        config_stats.runs += 1
        config_stats.seconds += seconds
        stats.runs += 1
        if cache is not None:
            cache.put(run_params, result)
            if manifests:
                cache.put_manifest(
                    run_params,
                    build_manifest(
                        run_params,
                        cache_hit=False,
                        wall_seconds=seconds,
                        model_version=cache.model_version,
                    ),
                )
        notify_cell(i, r, "run", seconds)
        remaining[i] -= 1
        if remaining[i] == 0:
            finish_config(i)

    # Configurations fully answered by the cache complete immediately,
    # in sweep order.
    for i in range(total):
        if remaining[i] == 0:
            finish_config(i)

    if jobs is None:
        jobs = 0
    if pending and jobs <= 1:
        for i, r, run_params in pending:
            result, seconds = _run_single_timed(run_params)
            record(i, r, run_params, result, seconds)
    elif pending:
        max_workers = min(jobs, os.cpu_count() or 1, len(pending)) or 1
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=max_workers
        ) as pool:
            futures = {
                pool.submit(_run_single_timed, run_params): (i, r, run_params)
                for i, r, run_params in pending
            }
            try:
                for future in concurrent.futures.as_completed(futures):
                    i, r, run_params = futures[future]
                    result, seconds = future.result()
                    record(i, r, run_params, result, seconds)
            except BaseException:
                # One worker failed: drop everything still queued so
                # the pool winds down promptly, then surface the
                # original exception instead of returning outcomes
                # with None holes.
                for future in futures:
                    future.cancel()
                raise
    stats.elapsed_seconds = perf_counter() - started
    return ExperimentResult(spec, outcomes, stats=stats)
