"""Experiment execution: replications, parallelism, caching, stats.

A sweep is a grid of ``(configuration, replication)`` cells; each cell
is one independent simulation run.  :func:`run_experiment` resolves as
many cells as it can from the content-addressed result cache
(:mod:`repro.experiments.cache`), fans the remaining cells out over a
process pool at *replication* granularity (not just configuration
granularity, so a single expensive configuration still parallelises),
and aggregates each configuration's replications in seed order —
which makes ``jobs=N`` bit-identical to an inline run.

Crash-safety (all opt-in, see :func:`run_experiment`):

* a :class:`~repro.experiments.journal.SweepJournal` records every
  completed cell as it lands, so an interrupted sweep can be resumed
  (``resume=True``) and will re-read finished cells from the cache;
* a per-replication wall-clock *watchdog* raises
  :class:`~repro.des.errors.SimulationStalled` inside the worker, and
  a harness-level guard terminates workers that are too wedged even
  for that; killed cells are retried on a fresh pool with capped
  exponential backoff, bounded by ``watchdog_retries``;
* ``drain_signals=True`` converts SIGINT/SIGTERM into a graceful
  drain: in-flight cells finish (bounded), the journal is flushed,
  and ``KeyboardInterrupt`` is raised.

Execution accounting (per-configuration wall time, cache hit/miss
counts, resumed cells, watchdog restarts, total elapsed) is reported
through :class:`SweepStats`, available as ``result.stats`` on the
returned :class:`ExperimentResult`.
"""

import concurrent.futures
import os
import signal
from dataclasses import dataclass, field
from time import perf_counter, sleep

from repro.core.model import LockingGranularityModel
from repro.core.results import aggregate
from repro.des.errors import SimulationStalled
from repro.experiments.cache import ResultCache, cache_enabled, cache_key
from repro.experiments.journal import SweepJournal, sweep_id
from repro.obs.manifest import build_manifest

#: Seconds a graceful drain waits for in-flight cells before the pool
#: is terminated anyway (the journal is flushed either way).
DRAIN_GRACE_SECONDS = 10.0

#: Backoff before retrying cells whose workers were killed: doubles per
#: retry round, capped here.
_RETRY_BACKOFF_BASE = 0.5
_RETRY_BACKOFF_CAP = 5.0


class SweepStalled(RuntimeError):
    """A sweep cell kept exceeding its watchdog after every retry."""


def _run_single(params):
    """Module-level worker so process pools can pickle it."""
    return LockingGranularityModel(params).run()


def _run_single_timed(params, timeout=None):
    """Worker returning ``(result, compute_seconds)`` for stats.

    *timeout* is the per-replication wall-clock watchdog, enforced
    inside the simulation kernel (see
    :meth:`repro.des.engine.Environment.run`).
    """
    started = perf_counter()
    result = LockingGranularityModel(params).run(timeout=timeout)
    return result, perf_counter() - started


def _retry_backoff(round_index):
    """Capped exponential backoff before retry round *round_index*."""
    return min(_RETRY_BACKOFF_BASE * (2.0 ** (round_index - 1)), _RETRY_BACKOFF_CAP)


class _SignalDrain:
    """Flag-setting SIGINT/SIGTERM handler for graceful sweep draining.

    Installing it outside the main thread is a silent no-op
    (``tripped`` then simply never trips), so pooled sweeps stay
    usable from worker threads.
    """

    def __init__(self):
        self.tripped = False
        self._previous = {}

    def install(self):
        """Swap in the flag-setting handler; returns self."""
        try:
            for signum in (signal.SIGINT, signal.SIGTERM):
                self._previous[signum] = signal.signal(signum, self._handle)
        except ValueError:
            self._previous = {}
        return self

    def restore(self):
        """Put the previous handlers back."""
        for signum, handler in self._previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, TypeError):
                pass
        self._previous = {}

    def _handle(self, signum, frame):
        self.tripped = True


def _terminate_pool(pool):
    """Hard-kill a process pool's workers (they are wedged)."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except OSError:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


@dataclass
class ConfigStats:
    """Execution accounting for one configuration of a sweep."""

    index: int
    label: str
    runs: int = 0
    cache_hits: int = 0
    seconds: float = 0.0


@dataclass
class SweepStats:
    """Execution accounting for one :func:`run_experiment` call.

    Attributes
    ----------
    configs / replications:
        Shape of the sweep: ``configs * replications`` total cells.
    runs:
        Cells actually simulated (= cache misses that completed).
    cache_hits / cache_misses:
        Cache lookup outcomes; the two always partition the cells
        (with caching disabled every cell counts as a miss), and
        ``cache_misses == runs`` after a successful sweep.
    elapsed_seconds:
        Wall time of the whole call, queueing and aggregation
        included.
    per_config:
        One :class:`ConfigStats` per configuration, in sweep order;
        ``seconds`` there is summed simulation compute time (across
        workers), not wall time.
    """

    configs: int = 0
    replications: int = 1
    runs: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    elapsed_seconds: float = 0.0
    per_config: list = field(default_factory=list)
    #: Cache hits that a resumed journal had already recorded as done
    #: — the share of this sweep completed by the interrupted run.
    resumed: int = 0
    #: Cells whose worker was killed (or stalled) and re-queued.
    watchdog_restarts: int = 0

    @property
    def cells(self):
        """Total (configuration, replication) cells in the sweep."""
        return self.configs * self.replications

    @property
    def hit_rate(self):
        """Fraction of cells answered from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def summary(self):
        """One-line human summary for CLI/script output."""
        return (
            "{} configs x {} replications: {} simulated, "
            "{} cache hits ({:.0%} hit rate) in {:.2f}s".format(
                self.configs,
                self.replications,
                self.runs,
                self.cache_hits,
                self.hit_rate,
                self.elapsed_seconds,
            )
        )


class ExperimentResult:
    """All rows of one executed spec.

    Attributes
    ----------
    spec:
        The :class:`~repro.experiments.config.ExperimentSpec` run.
    outcomes:
        One :class:`~repro.core.results.ReplicatedResult` per
        configuration, in sweep order.
    stats:
        The :class:`SweepStats` of the run that produced the outcomes
        (``None`` for results assembled by hand).
    """

    def __init__(self, spec, outcomes, stats=None):
        self.spec = spec
        self.outcomes = list(outcomes)
        self.stats = stats

    def __len__(self):
        return len(self.outcomes)

    def rows(self):
        """Flat dicts (parameters + mean outputs) for persistence."""
        return [outcome.as_dict() for outcome in self.outcomes]

    def series(self, y_field=None):
        """Curves: mapping series label → list of (x, y) sorted by x.

        *y_field* defaults to the spec's first y field.
        """
        y_field = y_field or self.spec.y_fields[0]
        curves = {}
        for outcome in self.outcomes:
            label = self.spec.series_label(outcome.params)
            x = getattr(outcome.params, self.spec.x_field)
            curves.setdefault(label, []).append((x, outcome.mean(y_field)))
        for points in curves.values():
            points.sort()
        return curves

    def optimum(self, series_label=None, y_field=None, maximize=True):
        """(x, y) at the best y for one curve (or the first curve)."""
        curves = self.series(y_field)
        if series_label is None:
            series_label = next(iter(curves))
        points = curves[series_label]
        chooser = max if maximize else min
        return chooser(points, key=lambda point: point[1])


def _resolve_cache(cache):
    """Normalise the *cache* argument of :func:`run_experiment`."""
    if cache is None:
        return ResultCache() if cache_enabled() else None
    if cache is False:
        return None
    return cache


def _config_label(spec, params):
    """Short human label of one configuration for stats output."""
    parts = ["{}={}".format(spec.x_field, getattr(params, spec.x_field))]
    series = spec.series_label(params)
    if series != "all":
        parts.append(series)
    return ", ".join(parts)


def run_experiment(
    spec,
    replications=1,
    jobs=None,
    progress=None,
    cache=None,
    refresh=False,
    cell_progress=None,
    manifests=True,
    journal=None,
    resume=False,
    watchdog=None,
    watchdog_retries=2,
    drain_signals=False,
):
    """Execute every configuration of *spec*.

    Parameters
    ----------
    spec:
        The experiment definition.
    replications:
        Independent replications per configuration (seeds increment).
    jobs:
        Worker processes; ``None``/0/1 runs inline, otherwise a
        process pool fans individual replication runs out.  Results
        are aggregated in seed order either way, so ``jobs=N`` is
        bit-identical to an inline run.
    progress:
        Optional callable ``progress(done, total)`` invoked whenever a
        configuration (all its replications) finishes.
    cache:
        ``None`` uses the default on-disk cache (``results/.cache``;
        honour ``REPRO_CACHE_DIR``, disable globally with
        ``REPRO_CACHE=0``); ``False`` bypasses caching entirely; a
        :class:`~repro.experiments.cache.ResultCache` instance is used
        as given.
    refresh:
        Ignore existing cache entries, re-simulate everything and
        overwrite them (the ``--refresh`` escape hatch).
    cell_progress:
        Optional callable ``cell_progress(done, total, info)`` invoked
        once per (configuration, replication) cell as it resolves —
        cache hits during the initial scan, simulated runs as they
        complete (in completion order under a pool).  *info* is a dict
        with ``config`` (index), ``replication``, ``label``,
        ``source`` (``"cache"`` or ``"run"``) and ``seconds``
        (compute time; ``None`` for hits).  This is the live-progress
        hook: a long sweep reports every finished replication instead
        of going dark until a whole configuration completes.
    manifests:
        When caching is active, write a provenance manifest (params
        hash, seed, git SHA, model version, wall time — see
        :mod:`repro.obs.manifest`) next to every newly stored result.
    journal:
        Optional :class:`~repro.experiments.journal.SweepJournal` (or
        a path string) recording every completed cell as it lands —
        the crash-safety log that makes *resume* possible.
    resume:
        Reuse a journal left by an interrupted run of the *same*
        sweep: previously journalled cells resolve from the cache and
        are counted in ``stats.resumed``.  A journal belonging to a
        different sweep is discarded automatically.
    watchdog:
        Per-replication wall-clock budget in seconds.  Enforced
        inside each worker via the kernel's run-loop timeout, plus a
        harness-level guard that terminates a pool making no progress
        for well past that budget; killed cells are retried on a
        fresh pool with capped backoff.
    watchdog_retries:
        Times one cell may be retried after stalling before the sweep
        fails with :class:`SweepStalled`.
    drain_signals:
        Convert SIGINT/SIGTERM into a graceful drain: stop submitting
        work, let in-flight cells finish (bounded by
        :data:`DRAIN_GRACE_SECONDS`), flush the journal, then raise
        ``KeyboardInterrupt``.

    Raises
    ------
    Exception
        The first worker exception is re-raised in the caller after
        outstanding pool work is cancelled; ``outcomes`` are never
        returned with ``None`` holes.
    SweepStalled
        A cell exceeded *watchdog* on its initial run and on every
        retry.
    KeyboardInterrupt
        With *drain_signals*, after a signal-triggered drain has
        flushed the journal.
    """
    if replications < 1:
        raise ValueError(
            "replications must be >= 1, got {}".format(replications)
        )
    started = perf_counter()
    configs = spec.configurations()
    total = len(configs)
    cache = _resolve_cache(cache)
    stats = SweepStats(configs=total, replications=replications)
    outcomes = [None] * total
    if isinstance(journal, (str, os.PathLike)):
        journal = SweepJournal(journal)

    # Grid of single-run results, one row per configuration, one
    # column per replication; filled from the cache first, then from
    # execution.
    total_cells = total * replications
    done_cells = 0

    def notify_cell(i, r, source, seconds=None):
        nonlocal done_cells
        done_cells += 1
        if cell_progress is not None:
            cell_progress(
                done_cells,
                total_cells,
                {
                    "config": i,
                    "replication": r,
                    "label": stats.per_config[i].label,
                    "source": source,
                    "seconds": seconds,
                },
            )

    # Materialise every cell (with its content address) up front: the
    # ordered addresses identify the sweep for the journal.
    cells = []  # (config_index, replication_index, run_params, key)
    for i, params in enumerate(configs):
        stats.per_config.append(
            ConfigStats(index=i, label=_config_label(spec, params))
        )
        for r in range(replications):
            run_params = params.replace(seed=params.seed + r)
            cells.append((i, r, run_params, cache_key(run_params)))

    journaled = set()
    if journal is not None:
        sid = sweep_id([key for _, _, _, key in cells])
        if resume:
            journaled = journal.load(sid)
        journal.begin(
            sid,
            len(cells),
            label=getattr(spec, "key", None),
            keep=resume,
        )

    grid = [[None] * replications for _ in range(total)]
    pending = []  # cells the cache could not answer
    for i, r, run_params, key in cells:
        hit = None
        if cache is not None and not refresh:
            hit = cache.get(run_params)
        if hit is not None:
            grid[i][r] = hit
            config_stats = stats.per_config[i]
            config_stats.cache_hits += 1
            stats.cache_hits += 1
            if key in journaled:
                stats.resumed += 1
            elif journal is not None:
                journal.record(key)
            notify_cell(i, r, "cache")
        else:
            pending.append((i, r, run_params, key))
            stats.cache_misses += 1

    remaining = [row.count(None) for row in grid]
    done_configs = 0

    def finish_config(i):
        nonlocal done_configs
        outcomes[i] = aggregate(grid[i])
        done_configs += 1
        if progress is not None:
            progress(done_configs, total)

    def record(i, r, run_params, key, result, seconds):
        grid[i][r] = result
        config_stats = stats.per_config[i]
        config_stats.runs += 1
        config_stats.seconds += seconds
        stats.runs += 1
        if cache is not None:
            cache.put(run_params, result)
            if manifests:
                cache.put_manifest(
                    run_params,
                    build_manifest(
                        run_params,
                        cache_hit=False,
                        wall_seconds=seconds,
                        model_version=cache.model_version,
                    ),
                )
        if journal is not None:
            journal.record(key)
        notify_cell(i, r, "run", seconds)
        remaining[i] -= 1
        if remaining[i] == 0:
            finish_config(i)

    # Configurations fully answered by the cache complete immediately,
    # in sweep order.
    for i in range(total):
        if remaining[i] == 0:
            finish_config(i)

    if jobs is None:
        jobs = 0
    drain = _SignalDrain().install() if drain_signals else None
    try:
        if pending and jobs <= 1:
            _run_inline(
                pending, record, stats, drain, watchdog, watchdog_retries
            )
        elif pending:
            max_workers = min(jobs, os.cpu_count() or 1, len(pending)) or 1
            _run_pooled(
                pending,
                record,
                stats,
                drain,
                watchdog,
                watchdog_retries,
                max_workers,
            )
        if journal is not None:
            journal.finish()
    finally:
        if drain is not None:
            drain.restore()
        if journal is not None:
            journal.close()
    stats.elapsed_seconds = perf_counter() - started
    return ExperimentResult(spec, outcomes, stats=stats)


def _run_inline(pending, record, stats, drain, watchdog, watchdog_retries):
    """Execute *pending* cells in this process, one at a time."""
    for i, r, run_params, key in pending:
        if drain is not None and drain.tripped:
            raise KeyboardInterrupt
        attempt = 0
        while True:
            try:
                result, seconds = _run_single_timed(run_params, watchdog)
                break
            except SimulationStalled:
                attempt += 1
                stats.watchdog_restarts += 1
                if attempt > watchdog_retries:
                    raise SweepStalled(
                        "cell (config={}, replication={}) exceeded the "
                        "{}s watchdog {} times".format(
                            i, r, watchdog, attempt
                        )
                    ) from None
                sleep(_retry_backoff(attempt))
        record(i, r, run_params, key, result, seconds)


def _run_pooled(
    pending, record, stats, drain, watchdog, watchdog_retries, max_workers
):
    """Fan *pending* cells out over worker pools, retrying stalls.

    Each *round* runs the outstanding cells on one pool.  Cells that
    stall (in-worker watchdog) or whose workers are terminated by the
    harness-level guard are collected and re-run on a fresh pool in
    the next round, after a capped exponential backoff — up to
    *watchdog_retries* attempts per cell, then :class:`SweepStalled`.
    """
    attempts = {}
    queue = list(pending)
    round_index = 0
    while queue:
        if round_index:
            sleep(_retry_backoff(round_index))
        queue = _pool_round(
            queue,
            record,
            stats,
            drain,
            watchdog,
            watchdog_retries,
            max_workers,
            attempts,
        )
        round_index += 1


def _pool_round(
    cells, record, stats, drain, watchdog, watchdog_retries, max_workers, attempts
):
    """Run one pool over *cells*; returns the cells needing a retry."""
    retry = []

    def mark_stalled(i, r, run_params, key):
        stats.watchdog_restarts += 1
        attempts[(i, r)] = attempts.get((i, r), 0) + 1
        if attempts[(i, r)] > watchdog_retries:
            raise SweepStalled(
                "cell (config={}, replication={}) exceeded the {}s "
                "watchdog after {} retries".format(
                    i, r, watchdog, watchdog_retries
                )
            )
        retry.append((i, r, run_params, key))

    pool = concurrent.futures.ProcessPoolExecutor(
        max_workers=min(max_workers, len(cells))
    )
    futures = {}
    for cell in cells:
        futures[pool.submit(_run_single_timed, cell[2], watchdog)] = cell
    not_done = set(futures)
    # The harness guard only fires when workers are wedged past the
    # in-worker timeout (e.g. stuck outside the run loop), so it sits
    # well above the watchdog itself.
    hard_limit = None if watchdog is None else max(2.0 * watchdog, watchdog + 5.0)
    needs_polling = watchdog is not None or drain is not None
    last_progress = perf_counter()
    draining_since = None
    try:
        while not_done:
            if drain is not None and drain.tripped and draining_since is None:
                draining_since = perf_counter()
                for future in not_done:
                    future.cancel()
            done, not_done = concurrent.futures.wait(
                not_done,
                timeout=0.2 if needs_polling else None,
                return_when=concurrent.futures.FIRST_COMPLETED,
            )
            for future in done:
                if future.cancelled():
                    continue  # drained before it started
                i, r, run_params, key = futures[future]
                try:
                    result, seconds = future.result()
                except SimulationStalled:
                    mark_stalled(i, r, run_params, key)
                else:
                    record(i, r, run_params, key, result, seconds)
                last_progress = perf_counter()
            if draining_since is not None:
                if (
                    not not_done
                    or perf_counter() - draining_since > DRAIN_GRACE_SECONDS
                ):
                    _terminate_pool(pool)
                    raise KeyboardInterrupt
                continue
            if (
                hard_limit is not None
                and not_done
                and not done
                and perf_counter() - last_progress > hard_limit
            ):
                # No completion for well past the in-worker budget:
                # the workers are wedged.  Kill them and re-queue
                # whatever they were running on a fresh pool.
                _terminate_pool(pool)
                for future in not_done:
                    i, r, run_params, key = futures[future]
                    mark_stalled(i, r, run_params, key)
                return retry
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    return retry
