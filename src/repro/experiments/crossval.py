"""Cross-validation of the conflict engines.

The paper's results rest on the Ries–Stonebraker probabilistic
shortcut.  :func:`cross_validate_engines` runs matched configurations
through the probabilistic and explicit engines and reports per-point
relative divergence, giving a quantitative answer to "was the
shortcut sound?" (EXPERIMENTS.md summarises the answer: yes, within
a modest band, slightly optimistic at fine granularity).
"""

from dataclasses import dataclass

from repro.core.model import simulate_replications


@dataclass(frozen=True)
class DivergencePoint:
    """One configuration's engine disagreement."""

    ltot: int
    probabilistic: float
    explicit: float

    @property
    def relative_gap(self):
        """``(explicit − probabilistic) / probabilistic`` (0 when both 0)."""
        if self.probabilistic == 0:
            return 0.0 if self.explicit == 0 else float("inf")
        return (self.explicit - self.probabilistic) / self.probabilistic


class CrossValidation:
    """Outcome of an engine cross-validation sweep."""

    def __init__(self, points, field):
        self.points = list(points)
        self.field = field

    def __len__(self):
        return len(self.points)

    @property
    def max_absolute_gap(self):
        """Largest |relative gap| across the sweep (inf-free points)."""
        gaps = [
            abs(p.relative_gap)
            for p in self.points
            if p.relative_gap != float("inf")
        ]
        return max(gaps) if gaps else 0.0

    def agree_within(self, tolerance):
        """True when every point's |relative gap| is <= *tolerance*."""
        return all(
            abs(p.relative_gap) <= tolerance
            for p in self.points
            if p.relative_gap != float("inf")
        )

    def format(self):
        """A small text table of the divergences."""
        lines = [
            "{:>6s} {:>14s} {:>10s} {:>8s}".format(
                "ltot", "probabilistic", "explicit", "gap"
            )
        ]
        for p in self.points:
            lines.append(
                "{:>6d} {:>14.4f} {:>10.4f} {:>+7.1%}".format(
                    p.ltot, p.probabilistic, p.explicit, p.relative_gap
                )
            )
        return "\n".join(lines)


def cross_validate_engines(
    params, ltot_grid=(1, 10, 100, 1000, 5000), field="throughput",
    replications=2,
):
    """Run both engines across *ltot_grid* and collect divergences.

    Parameters
    ----------
    params:
        Base configuration; its ``conflict_engine`` is overridden.
    ltot_grid:
        Lock counts to compare at.
    field:
        Output field compared.
    replications:
        Replications per point (same seeds in both engines: common
        random numbers).
    """
    points = []
    for ltot in ltot_grid:
        prob = simulate_replications(
            params.replace(ltot=ltot, conflict_engine="probabilistic"),
            replications=replications,
        ).mean(field)
        expl = simulate_replications(
            params.replace(ltot=ltot, conflict_engine="explicit"),
            replications=replications,
        ).mean(field)
        points.append(DivergencePoint(ltot, prob, expl))
    return CrossValidation(points, field)
