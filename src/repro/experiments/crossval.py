"""Cross-validation: conflict engines, and simulator vs analytic model.

The paper's results rest on the Ries–Stonebraker probabilistic
shortcut.  :func:`cross_validate_engines` runs matched configurations
through the probabilistic and explicit engines and reports per-point
relative divergence, giving a quantitative answer to "was the
shortcut sound?" (EXPERIMENTS.md summarises the answer: yes, within
a modest band, slightly optimistic at fine granularity).

:func:`cross_validate_analytic` plays the same game against the
analytic fast path (:mod:`repro.analytic.mva`): it simulates a spec's
grid (cache-backed, so repeated validations are cheap), predicts every
cell, and reports per-cell relative error, the worst offenders, and a
sim-vs-analytic SVG overlay.  Cells whose simulated run completed too
few transactions to estimate throughput reliably are flagged
*low-sample* and excluded from the headline mean — comparing against a
transient-dominated measurement would test the simulator's noise, not
the model (they stay visible in the table and JSON).  This is the
CI-enforced drift detector: golden digests catch *changed* outputs,
the crossval error bound catches outputs that drift away from the
physics the model encodes.
"""

import math
from dataclasses import dataclass

from repro.core.model import simulate_replications

#: Simulated cells with fewer completed transactions than this are
#: flagged low-sample and excluded from the headline error mean.
MIN_COMPLETIONS = 25


@dataclass(frozen=True)
class DivergencePoint:
    """One configuration's engine disagreement."""

    ltot: int
    probabilistic: float
    explicit: float

    @property
    def relative_gap(self):
        """``(explicit − probabilistic) / probabilistic`` (0 when both 0)."""
        if self.probabilistic == 0:
            return 0.0 if self.explicit == 0 else float("inf")
        return (self.explicit - self.probabilistic) / self.probabilistic


class CrossValidation:
    """Outcome of an engine cross-validation sweep."""

    def __init__(self, points, field):
        self.points = list(points)
        self.field = field

    def __len__(self):
        return len(self.points)

    @property
    def max_absolute_gap(self):
        """Largest |relative gap| across the sweep (inf-free points)."""
        gaps = [
            abs(p.relative_gap)
            for p in self.points
            if p.relative_gap != float("inf")
        ]
        return max(gaps) if gaps else 0.0

    def agree_within(self, tolerance):
        """True when every point's |relative gap| is <= *tolerance*."""
        return all(
            abs(p.relative_gap) <= tolerance
            for p in self.points
            if p.relative_gap != float("inf")
        )

    def format(self):
        """A small text table of the divergences."""
        lines = [
            "{:>6s} {:>14s} {:>10s} {:>8s}".format(
                "ltot", "probabilistic", "explicit", "gap"
            )
        ]
        for p in self.points:
            lines.append(
                "{:>6d} {:>14.4f} {:>10.4f} {:>+7.1%}".format(
                    p.ltot, p.probabilistic, p.explicit, p.relative_gap
                )
            )
        return "\n".join(lines)


def cross_validate_engines(
    params, ltot_grid=(1, 10, 100, 1000, 5000), field="throughput",
    replications=2,
):
    """Run both engines across *ltot_grid* and collect divergences.

    Parameters
    ----------
    params:
        Base configuration; its ``conflict_engine`` is overridden.
    ltot_grid:
        Lock counts to compare at.
    field:
        Output field compared.
    replications:
        Replications per point (same seeds in both engines: common
        random numbers).
    """
    points = []
    for ltot in ltot_grid:
        prob = simulate_replications(
            params.replace(ltot=ltot, conflict_engine="probabilistic"),
            replications=replications,
        ).mean(field)
        expl = simulate_replications(
            params.replace(ltot=ltot, conflict_engine="explicit"),
            replications=replications,
        ).mean(field)
        points.append(DivergencePoint(ltot, prob, expl))
    return CrossValidation(points, field)


# -- simulator vs analytic model ------------------------------------------


@dataclass(frozen=True)
class AnalyticCell:
    """One configuration's sim-vs-analytic comparison."""

    label: str
    x: float
    simulated: float
    predicted: float
    completions: float
    uncertainty: float
    low_sample: bool

    @property
    def relative_error(self):
        """``(predicted − simulated) / simulated`` (inf when sim is 0)."""
        if self.simulated == 0:
            return 0.0 if self.predicted == 0 else math.inf
        return (self.predicted - self.simulated) / self.simulated

    @property
    def valid(self):
        """True when the cell counts toward the headline mean."""
        return not self.low_sample and math.isfinite(self.relative_error)


class AnalyticCrossValidation:
    """Outcome of one :func:`cross_validate_analytic` sweep."""

    def __init__(self, cells, field="throughput", spec_key=None):
        self.cells = list(cells)
        self.field = field
        self.spec_key = spec_key

    def __len__(self):
        return len(self.cells)

    @property
    def valid_cells(self):
        return [c for c in self.cells if c.valid]

    @property
    def mean_relative_error(self):
        """Mean |relative error| over valid (non-low-sample) cells."""
        errors = [abs(c.relative_error) for c in self.valid_cells]
        return sum(errors) / len(errors) if errors else math.nan

    @property
    def max_relative_error(self):
        """Largest |relative error| over valid cells."""
        errors = [abs(c.relative_error) for c in self.valid_cells]
        return max(errors) if errors else math.nan

    def passes(self, threshold):
        """True when the headline mean error is at or below *threshold*."""
        mean = self.mean_relative_error
        return math.isfinite(mean) and mean <= threshold

    def worst(self, count=5):
        """The *count* valid cells with the largest |relative error|."""
        return sorted(
            self.valid_cells,
            key=lambda c: abs(c.relative_error),
            reverse=True,
        )[:count]

    def format(self, worst=5):
        """Per-cell table plus the worst-cell summary."""
        lines = [
            "{:>24s} {:>8s} {:>12s} {:>12s} {:>8s}  {}".format(
                "series", "x", "simulated", "analytic", "error", "flags"
            )
        ]
        for cell in self.cells:
            flags = []
            if cell.low_sample:
                flags.append("low-sample (excluded)")
            if cell.uncertainty >= 0.5:
                flags.append("uncertain")
            error = (
                "{:>+7.1%}".format(cell.relative_error)
                if math.isfinite(cell.relative_error)
                else "    inf"
            )
            lines.append(
                "{:>24s} {:>8g} {:>12.4f} {:>12.4f} {:>8s}  {}".format(
                    cell.label[-24:], cell.x, cell.simulated,
                    cell.predicted, error, ", ".join(flags)
                )
            )
        lines.append("")
        lines.append(
            "mean |error| = {:.1%} over {} valid cells "
            "({} low-sample excluded); max = {:.1%}".format(
                self.mean_relative_error,
                len(self.valid_cells),
                sum(1 for c in self.cells if c.low_sample),
                self.max_relative_error,
            )
        )
        worst_cells = self.worst(worst)
        if worst_cells:
            lines.append("worst cells:")
            for cell in worst_cells:
                lines.append(
                    "  {} {}={:g}: sim={:.4f} analytic={:.4f} ({:+.1%})".format(
                        cell.label, "x", cell.x, cell.simulated,
                        cell.predicted, cell.relative_error
                    )
                )
        return "\n".join(lines)

    def as_dict(self):
        """JSON-ready summary (artifact format for CI uploads)."""
        return {
            "spec": self.spec_key,
            "field": self.field,
            "mean_relative_error": self.mean_relative_error,
            "max_relative_error": self.max_relative_error,
            "valid_cells": len(self.valid_cells),
            "low_sample_cells": sum(1 for c in self.cells if c.low_sample),
            "cells": [
                {
                    "label": c.label,
                    "x": c.x,
                    "simulated": c.simulated,
                    "predicted": c.predicted,
                    "relative_error": (
                        c.relative_error
                        if math.isfinite(c.relative_error)
                        else None
                    ),
                    "completions": c.completions,
                    "uncertainty": c.uncertainty,
                    "low_sample": c.low_sample,
                }
                for c in self.cells
            ],
        }


def cross_validate_analytic(
    spec,
    field="throughput",
    replications=1,
    min_completions=MIN_COMPLETIONS,
    **run_kwargs
):
    """Simulate *spec*'s grid and compare every cell to the model.

    Parameters
    ----------
    spec:
        The :class:`~repro.experiments.config.ExperimentSpec` to
        validate on; the simulation side runs through
        :func:`~repro.experiments.runner.run_experiment` (so the
        result cache and journals apply as usual — repeated
        validations of an already-simulated grid cost only the
        predictions).
    field:
        Output field compared (throughput is the headline).
    replications:
        Simulation replications per configuration.
    min_completions:
        Mean completed transactions below which a cell is flagged
        low-sample and excluded from the headline mean.
    run_kwargs:
        Passed through to :func:`run_experiment` (``jobs``, ``cache``,
        ``journal`` ...).

    Returns ``(AnalyticCrossValidation, ExperimentResult)``.
    """
    from repro.analytic.mva import predict
    from repro.experiments.runner import run_experiment

    result = run_experiment(spec, replications=replications, **run_kwargs)
    cells = []
    for params, outcome in zip(spec.configurations(), result.outcomes):
        prediction = predict(params)
        simulated = outcome.mean(field)
        completions = outcome.mean("totcom")
        low_sample = (
            not math.isfinite(completions) or completions < min_completions
        )
        cells.append(
            AnalyticCell(
                label=spec.series_label(params),
                x=getattr(params, spec.x_field),
                simulated=simulated,
                predicted=prediction.mean(field),
                completions=completions,
                uncertainty=prediction.uncertainty,
                low_sample=low_sample,
            )
        )
    return (
        AnalyticCrossValidation(cells, field=field, spec_key=spec.key),
        result,
    )


def save_crossval_chart(crossval, path, title=None):
    """Write the sim-vs-analytic overlay SVG for *crossval* to *path*.

    Simulated curves are solid with filled markers; their analytic
    twins are dashed in the same colour with open markers.
    """
    from repro.experiments.svg import PALETTE, SvgChart

    chart = SvgChart(
        title or "{}: simulated vs analytic {}".format(
            crossval.spec_key or "sweep", crossval.field
        ),
        y_label=crossval.field,
    )
    curves = {}
    for cell in crossval.cells:
        curves.setdefault(cell.label, []).append(cell)
    for index, (label, cells) in enumerate(curves.items()):
        colour = PALETTE[index % len(PALETTE)]
        chart.add_series(
            "{} (sim)".format(label),
            [(c.x, c.simulated) for c in cells],
            color=colour,
        )
        chart.add_series(
            "{} (model)".format(label),
            [(c.x, c.predicted) for c in cells],
            dash="6,3",
            color=colour,
        )
    return chart.save(path)
