"""Reporting: paper-style series tables and quick ASCII plots."""

import math


def _format_value(value):
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000:
            return "{:.0f}".format(value)
        if magnitude >= 1:
            return "{:.3f}".format(value)
        return "{:.4f}".format(value)
    return str(value)


def format_series_table(result, y_field=None, title=None):
    """A text table: one row per x value, one column per series.

    Mirrors how the paper's figures read — for example Fig 2 becomes a
    table of throughput with a column per ``npros`` and a row per
    ``ltot``.
    """
    spec = result.spec
    y_field = y_field or spec.y_fields[0]
    curves = result.series(y_field)
    labels = list(curves)
    xs = sorted({x for points in curves.values() for x, _ in points})
    lookup = {
        label: {x: y for x, y in points} for label, points in curves.items()
    }
    header = [spec.x_field] + labels
    rows = [header]
    for x in xs:
        row = [_format_value(x)]
        for label in labels:
            row.append(_format_value(lookup[label].get(x)))
        rows.append(row)
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    if title is None:
        title = "{} — {} [{}]".format(spec.key, spec.title, y_field)
    lines.append(title)
    lines.append("-" * min(len(title), 78))
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
        if index == 0:
            lines.append(
                "  ".join("-" * widths[i] for i in range(len(header)))
            )
    return "\n".join(lines)


def ascii_plot(result, y_field=None, width=64, height=16):
    """A rough log-x character plot of every series (for the CLI)."""
    spec = result.spec
    y_field = y_field or spec.y_fields[0]
    curves = result.series(y_field)
    points = [
        (x, y)
        for series in curves.values()
        for x, y in series
        if y == y and x > 0  # drop NaNs; log axis needs x > 0
    ]
    if not points:
        return "(no data)"
    x_lo = math.log10(min(x for x, _ in points))
    x_hi = math.log10(max(x for x, _ in points))
    y_lo = min(y for _, y in points)
    y_hi = max(y for _, y in points)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    for index, (label, series) in enumerate(curves.items()):
        marker = markers[index % len(markers)]
        for x, y in series:
            if y != y or x <= 0:
                continue
            col = int((math.log10(x) - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker
    lines = ["{} vs {} (log x)".format(y_field, spec.x_field)]
    lines.append("{:.4g} ┤".format(y_hi))
    for row in grid:
        lines.append("       │" + "".join(row))
    lines.append("{:.4g} └".format(y_lo) + "─" * width)
    lines.append(
        "        x: {:.4g} … {:.4g}".format(10 ** x_lo, 10 ** x_hi)
    )
    for index, label in enumerate(curves):
        lines.append(
            "        {} {}".format(markers[index % len(markers)], label)
        )
    return "\n".join(lines)


def summarize_optima(result, y_field=None, maximize=True):
    """Per-series optimum line ("npros=30: best at ltot=20, y=0.57")."""
    spec = result.spec
    y_field = y_field or spec.y_fields[0]
    lines = []
    for label in result.series(y_field):
        x, y = result.optimum(label, y_field, maximize)
        lines.append(
            "{}: {} at {}={}, {}={}".format(
                label,
                "max" if maximize else "min",
                spec.x_field,
                x,
                y_field,
                _format_value(y),
            )
        )
    return "\n".join(lines)


def accelerator_note(stats):
    """One-line summary of what the analytic accelerator saved.

    Empty string for unaccelerated sweeps.  The wall-clock estimate
    extrapolates the mean compute time of the cells that *were*
    simulated onto the pruned ones — honest enough for a progress
    line, and clearly labelled an estimate.
    """
    if not stats.analytic_cells:
        return ""
    sim_seconds = sum(config.seconds for config in stats.per_config)
    per_cell = sim_seconds / stats.runs if stats.runs else 0.0
    return (
        "Accelerator '{}': {} of {} cells filled analytically "
        "(~{:.1f}s of simulation avoided at ~{:.2f}s/cell)".format(
            stats.accelerator,
            stats.analytic_cells,
            stats.cells,
            per_cell * stats.analytic_cells,
            per_cell,
        )
    )
