"""Parameter sensitivity analysis.

Quantifies how strongly each input parameter drives an output: run a
baseline, then re-run with each parameter perturbed by ±``delta``
(relative), and report the *elasticity* — the ratio of relative output
change to relative input change.  Elasticities near 0 mean the model
barely cares; |elasticity| ≈ 1 means proportional response.

This answers referee-style questions about the study ("how sensitive
are the conclusions to the lock I/O cost?") with one call, and the
test suite uses it to pin the model's qualitative derivative structure
(e.g. throughput falls when ``iotime`` rises; rises with ``npros``).
"""

from dataclasses import dataclass

from repro.core.model import simulate_replications

#: Parameters that can be perturbed multiplicatively.
NUMERIC_PARAMETERS = (
    "ltot",
    "ntrans",
    "maxtransize",
    "cputime",
    "iotime",
    "lcputime",
    "liotime",
    "npros",
)

#: Integer-valued parameters (perturbations are rounded, min 1).
_INTEGER_PARAMETERS = {"ltot", "ntrans", "maxtransize", "npros"}


@dataclass(frozen=True)
class Sensitivity:
    """One parameter's measured effect.

    Attributes
    ----------
    parameter:
        The perturbed input.
    low_value / high_value:
        The perturbed input settings actually used.
    low_output / high_output:
        The output at each perturbed setting.
    baseline_output:
        The unperturbed output.
    elasticity:
        Central-difference elasticity
        ``((high_out − low_out)/baseline_out) / ((high_in − low_in)/baseline_in)``.
    """

    parameter: str
    low_value: float
    high_value: float
    low_output: float
    high_output: float
    baseline_output: float
    elasticity: float


def _perturb(params, name, factor):
    value = getattr(params, name)
    perturbed = value * factor
    if name in _INTEGER_PARAMETERS:
        perturbed = max(1, round(perturbed))
        if name == "ltot":
            perturbed = min(perturbed, params.dbsize)
        if name == "maxtransize":
            perturbed = min(perturbed, params.dbsize)
    if perturbed == value:
        return None
    return params.replace(**{name: perturbed})


def analyze_sensitivity(
    params,
    parameters=NUMERIC_PARAMETERS,
    output="throughput",
    delta=0.25,
    replications=2,
):
    """Measure elasticities of *output* w.r.t. each of *parameters*.

    Returns a dict parameter → :class:`Sensitivity` (parameters whose
    perturbation collapses to the original value are skipped).
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    baseline = simulate_replications(params, replications=replications).mean(
        output
    )
    results = {}
    for name in parameters:
        low_params = _perturb(params, name, 1.0 - delta)
        high_params = _perturb(params, name, 1.0 + delta)
        if low_params is None or high_params is None:
            continue
        low_out = simulate_replications(
            low_params, replications=replications
        ).mean(output)
        high_out = simulate_replications(
            high_params, replications=replications
        ).mean(output)
        low_in = getattr(low_params, name)
        high_in = getattr(high_params, name)
        base_in = getattr(params, name)
        input_change = (high_in - low_in) / base_in
        if baseline == 0 or input_change == 0:
            elasticity = 0.0
        else:
            elasticity = ((high_out - low_out) / baseline) / input_change
        results[name] = Sensitivity(
            parameter=name,
            low_value=low_in,
            high_value=high_in,
            low_output=low_out,
            high_output=high_out,
            baseline_output=baseline,
            elasticity=elasticity,
        )
    return results


def format_sensitivities(results):
    """A text table of elasticities, strongest first."""
    lines = [
        "{:>12s} {:>10s} {:>10s} {:>12s}".format(
            "parameter", "low out", "high out", "elasticity"
        )
    ]
    ordered = sorted(
        results.values(), key=lambda s: abs(s.elasticity), reverse=True
    )
    for item in ordered:
        lines.append(
            "{:>12s} {:>10.4g} {:>10.4g} {:>+12.2f}".format(
                item.parameter, item.low_output, item.high_output,
                item.elasticity,
            )
        )
    return "\n".join(lines)
