"""Experiment harness: every table and figure of the paper's evaluation.

:mod:`repro.experiments.config`
    :class:`ExperimentSpec` — a declarative sweep definition — and the
    common grids (``LTOT_GRID``, ``NPROS_GRID``).
:mod:`repro.experiments.figures`
    One spec builder per paper exhibit: ``table1()`` and ``figure2()``
    … ``figure12()``, plus the ablation specs, all in the
    :data:`~repro.experiments.figures.EXHIBITS` registry.
:mod:`repro.experiments.runner`
    Runs a spec's configurations (optionally replicated and in
    parallel) into an :class:`ExperimentResult`.
:mod:`repro.experiments.report`
    Paper-style series tables and quick ASCII plots.
:mod:`repro.experiments.storage`
    CSV/JSON persistence of result rows.
"""

from repro.experiments.config import LTOT_GRID, NPROS_GRID, ExperimentSpec
from repro.experiments.crossval import CrossValidation, cross_validate_engines
from repro.experiments.figures import EXHIBITS, get_exhibit
from repro.experiments.report import ascii_plot, format_series_table
from repro.experiments.runner import (
    ExperimentResult,
    run_experiment,
    run_experiments,
)
from repro.experiments.search import SearchOutcome, find_optimal_ltot
from repro.experiments.sensitivity import (
    Sensitivity,
    analyze_sensitivity,
    format_sensitivities,
)
from repro.experiments.storage import load_rows_csv, save_rows_csv, save_rows_json
from repro.experiments.svg import SvgChart, chart_from_result, save_result_charts

__all__ = [
    "CrossValidation",
    "EXHIBITS",
    "ExperimentResult",
    "ExperimentSpec",
    "cross_validate_engines",
    "LTOT_GRID",
    "NPROS_GRID",
    "SearchOutcome",
    "Sensitivity",
    "SvgChart",
    "analyze_sensitivity",
    "ascii_plot",
    "find_optimal_ltot",
    "format_sensitivities",
    "chart_from_result",
    "format_series_table",
    "get_exhibit",
    "load_rows_csv",
    "run_experiment",
    "run_experiments",
    "save_result_charts",
    "save_rows_csv",
    "save_rows_json",
]
