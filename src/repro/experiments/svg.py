"""Pure-Python SVG line charts for exhibit results.

No plotting library is available offline, so this module renders the
paper-style figures (log-x lock-count axis, one line per series)
directly as SVG.  The output opens in any browser and diffs cleanly in
version control.
"""

import math
from xml.sax.saxutils import escape

#: Default canvas geometry (pixels).
WIDTH = 640
HEIGHT = 420
MARGIN_LEFT = 70
MARGIN_RIGHT = 170
MARGIN_TOP = 48
MARGIN_BOTTOM = 56

#: Line colours cycled across series.
PALETTE = (
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
    "#8c564b", "#17becf", "#7f7f7f",
)

#: Point markers cycled across series (SVG path fragments are overkill;
#: circles with distinct fills suffice at these sizes).
MARKER_RADIUS = 3.0


class SvgChart:
    """A log-x / linear-y multi-series line chart.

    Parameters
    ----------
    title:
        Chart heading.
    x_label / y_label:
        Axis captions.
    log_x:
        Plot x on a log10 scale (the paper's lock-count axes are log).
    """

    def __init__(self, title, x_label="ltot", y_label="", log_x=True):
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.log_x = log_x
        self._series = []

    def add_series(self, label, points, dash=None, color=None):
        """Add one curve: *points* is a list of (x, y) pairs.

        *dash* is an optional SVG ``stroke-dasharray`` string (e.g.
        ``"6,3"``) — analytic overlays are drawn dashed so they read
        apart from simulated curves; *color* pins the stroke colour
        instead of cycling the palette (so an overlay can match its
        simulated counterpart).
        """
        cleaned = [
            (x, y)
            for x, y in points
            if y == y and (not self.log_x or x > 0)
        ]
        if cleaned:
            self._series.append((label, sorted(cleaned), dash, color))

    def _x_transform(self, x):
        return math.log10(x) if self.log_x else x

    def render(self):
        """The complete SVG document as a string."""
        if not self._series:
            return self._empty_document()
        xs = [
            self._x_transform(x)
            for _, points, _, _ in self._series
            for x, _ in points
        ]
        ys = [y for _, points, _, _ in self._series for _, y in points]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        y_lo = min(y_lo, 0.0) if y_lo > 0 and y_lo < 0.2 * y_hi else y_lo
        plot_w = WIDTH - MARGIN_LEFT - MARGIN_RIGHT
        plot_h = HEIGHT - MARGIN_TOP - MARGIN_BOTTOM

        def px(x):
            return MARGIN_LEFT + (self._x_transform(x) - x_lo) / (x_hi - x_lo) * plot_w

        def py(y):
            return MARGIN_TOP + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h

        parts = [
            '<svg xmlns="http://www.w3.org/2000/svg" width="{w}" '
            'height="{h}" viewBox="0 0 {w} {h}" font-family="sans-serif" '
            'font-size="11">'.format(w=WIDTH, h=HEIGHT),
            '<rect width="{}" height="{}" fill="white"/>'.format(WIDTH, HEIGHT),
            '<text x="{}" y="20" font-size="13" font-weight="bold">{}</text>'.format(
                MARGIN_LEFT, escape(self.title)
            ),
        ]
        parts.extend(self._axes(x_lo, x_hi, y_lo, y_hi, px, py))
        for index, (label, points, dash, color) in enumerate(self._series):
            colour = color or PALETTE[index % len(PALETTE)]
            dash_attr = (
                ' stroke-dasharray="{}"'.format(dash) if dash else ""
            )
            path = " ".join(
                "{}{:.1f},{:.1f}".format("M" if i == 0 else "L", px(x), py(y))
                for i, (x, y) in enumerate(points)
            )
            parts.append(
                '<path d="{}" fill="none" stroke="{}" '
                'stroke-width="1.6"{}/>'.format(path, colour, dash_attr)
            )
            for x, y in points:
                if dash:
                    # Open markers keep dashed (analytic) overlays
                    # visually distinct from their simulated twins.
                    parts.append(
                        '<circle cx="{:.1f}" cy="{:.1f}" r="{}" fill="white" '
                        'stroke="{}"/>'.format(
                            px(x), py(y), MARKER_RADIUS, colour
                        )
                    )
                else:
                    parts.append(
                        '<circle cx="{:.1f}" cy="{:.1f}" r="{}" '
                        'fill="{}"/>'.format(
                            px(x), py(y), MARKER_RADIUS, colour
                        )
                    )
            legend_y = MARGIN_TOP + 14 + index * 16
            legend_x = WIDTH - MARGIN_RIGHT + 12
            parts.append(
                '<circle cx="{}" cy="{}" r="{}" fill="{}"{}/>'.format(
                    legend_x, legend_y - 4, MARKER_RADIUS,
                    "white" if dash else colour,
                    ' stroke="{}"'.format(colour) if dash else "",
                )
            )
            parts.append(
                '<text x="{}" y="{}">{}</text>'.format(
                    legend_x + 8, legend_y, escape(str(label))
                )
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def _axes(self, x_lo, x_hi, y_lo, y_hi, px, py):
        parts = []
        x0, y0 = MARGIN_LEFT, HEIGHT - MARGIN_BOTTOM
        x1, y1 = WIDTH - MARGIN_RIGHT, MARGIN_TOP
        parts.append(
            '<line x1="{0}" y1="{1}" x2="{2}" y2="{1}" '
            'stroke="black"/>'.format(x0, y0, x1)
        )
        parts.append(
            '<line x1="{0}" y1="{1}" x2="{0}" y2="{2}" '
            'stroke="black"/>'.format(x0, y0, y1)
        )
        # X ticks: decades when log, else 5 even ticks.
        if self.log_x:
            ticks = [
                10 ** d
                for d in range(int(math.floor(x_lo)), int(math.ceil(x_hi)) + 1)
                if x_lo - 1e-9 <= d <= x_hi + 1e-9
            ]
        else:
            ticks = [x_lo + i * (x_hi - x_lo) / 4 for i in range(5)]
        for tick in ticks:
            x = px(tick)
            parts.append(
                '<line x1="{0:.1f}" y1="{1}" x2="{0:.1f}" y2="{2}" '
                'stroke="black"/>'.format(x, y0, y0 + 4)
            )
            parts.append(
                '<text x="{:.1f}" y="{}" text-anchor="middle">{:g}</text>'.format(
                    x, y0 + 18, tick
                )
            )
        for i in range(5):
            value = y_lo + i * (y_hi - y_lo) / 4
            y = py(value)
            parts.append(
                '<line x1="{0}" y1="{1:.1f}" x2="{2}" y2="{1:.1f}" '
                'stroke="#dddddd"/>'.format(x0, y, x1)
            )
            parts.append(
                '<text x="{}" y="{:.1f}" text-anchor="end">{:.4g}</text>'.format(
                    x0 - 6, y + 4, value
                )
            )
        parts.append(
            '<text x="{}" y="{}" text-anchor="middle">{}</text>'.format(
                (x0 + x1) / 2, HEIGHT - 14, escape(self.x_label)
            )
        )
        parts.append(
            '<text x="16" y="{}" transform="rotate(-90 16 {})" '
            'text-anchor="middle">{}</text>'.format(
                (y0 + y1) / 2, (y0 + y1) / 2, escape(self.y_label)
            )
        )
        return parts

    def _empty_document(self):
        return (
            '<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}">'
            '<text x="20" y="40">no data</text></svg>'.format(w=WIDTH, h=HEIGHT)
        )

    def save(self, path):
        """Write the SVG document to *path*."""
        with open(path, "w") as handle:
            handle.write(self.render())
        return path


def chart_from_result(result, y_field=None, title=None):
    """Build an :class:`SvgChart` from an
    :class:`~repro.experiments.runner.ExperimentResult`."""
    spec = result.spec
    y_field = y_field or spec.y_fields[0]
    chart = SvgChart(
        title or "{}: {}".format(spec.key, spec.title),
        x_label=spec.x_field,
        y_label=y_field,
        log_x=spec.x_field == "ltot",
    )
    for label, points in result.series(y_field).items():
        chart.add_series(label, points)
    return chart


def save_result_charts(result, directory, prefix=None):
    """Write one SVG per y-field of *result* into *directory*.

    Returns the list of written paths.
    """
    import os

    prefix = prefix or result.spec.key
    paths = []
    for y_field in result.spec.y_fields:
        chart = chart_from_result(result, y_field)
        path = os.path.join(directory, "{}_{}.svg".format(prefix, y_field))
        chart.save(path)
        paths.append(path)
    return paths
