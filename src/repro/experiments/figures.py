"""One experiment spec per paper exhibit (Table 1, Figures 2–12).

Every builder returns an :class:`~repro.experiments.config.ExperimentSpec`
whose defaults match the paper's setup (Table 1 parameters, horizontal
partitioning, best placement, probabilistic conflicts) with only the
deviations that exhibit studies.  Ablation specs beyond the paper's
exhibits live at the bottom.
"""

from repro.core.parameters import SimulationParameters
from repro.experiments.config import (
    DEFAULT_TMAX,
    LTOT_GRID,
    NPROS_GRID,
    ExperimentSpec,
)

#: maxtransize values of §3.2 (Figure 6).
SIZE_GRID = (50, 100, 500, 2500, 5000)
#: Lock I/O times of §3.3 (Figure 7).
LIOTIME_GRID = (0.2, 0.1, 0.0)
#: Placement strategies of §3.5 (Figures 9–12).
PLACEMENT_GRID = ("best", "random", "worst")


def _base(**changes):
    return SimulationParameters(tmax=DEFAULT_TMAX).replace(**changes)


def table1():
    """Table 1 — the input parameter set (a single run at defaults)."""
    return ExperimentSpec(
        key="table1",
        title="Input parameters used in the simulation experiments",
        base=_base(),
        sweeps={},
        series_fields=(),
        y_fields=("throughput", "response_time"),
        expected_shape="Prints the Table 1 defaults and one run's outputs.",
    )


def figure2():
    """Fig 2 — throughput & response time vs locks × processors."""
    return ExperimentSpec(
        key="fig2",
        title="Effects of number of locks and number of processors on "
        "throughput and response time",
        base=_base(),
        sweeps={"npros": NPROS_GRID, "ltot": LTOT_GRID},
        series_fields=("npros",),
        y_fields=("throughput", "response_time"),
        expected_shape=(
            "Convex throughput in ltot with the optimum below ~200 locks; "
            "higher and steeper curves for larger npros; response time "
            "convex, flattening as npros grows."
        ),
    )


def figure3():
    """Fig 3 — useful I/O and useful CPU time vs locks × processors."""
    return ExperimentSpec(
        key="fig3",
        title="Effects of number of locks and number of processors on "
        "useful I/O time and useful CPU time",
        base=_base(),
        sweeps={"npros": NPROS_GRID, "ltot": LTOT_GRID},
        series_fields=("npros",),
        y_fields=("usefulios", "usefulcpus"),
        expected_shape=(
            "Useful times convex in ltot, decreasing with npros; the "
            "spread across npros narrows beyond the optimum (10-100 locks)."
        ),
    )


def figure4():
    """Fig 4 — lock overhead vs locks × processors, large transactions."""
    return ExperimentSpec(
        key="fig4",
        title="Effect of number of processors and number of locks on lock "
        "overhead with large transactions (maxtransize = 500)",
        base=_base(maxtransize=500),
        sweeps={"npros": NPROS_GRID, "ltot": LTOT_GRID},
        series_fields=("npros",),
        y_fields=("lock_overhead", "lockios", "lockcpus"),
        expected_shape=(
            "Lock overhead concave in ltot, rising steeply past ~200 "
            "locks; concavity more pronounced for small npros."
        ),
    )


def figure5():
    """Fig 5 — lock overhead vs locks × processors, small transactions."""
    return ExperimentSpec(
        key="fig5",
        title="Effect of number of processors and number of locks on lock "
        "overhead with small transactions (maxtransize = 50)",
        base=_base(maxtransize=50),
        sweeps={"npros": NPROS_GRID, "ltot": LTOT_GRID},
        series_fields=("npros",),
        y_fields=("lock_overhead", "lockios", "lockcpus"),
        expected_shape=(
            "Same concave shape as Fig 4 but with more overhead at low "
            "lock counts (small transactions complete faster, raising the "
            "lock request rate)."
        ),
    )


def figure6():
    """Fig 6 — throughput & response time vs locks × transaction size."""
    return ExperimentSpec(
        key="fig6",
        title="Effects of number of locks and transaction size on "
        "throughput and response time (npros = 10)",
        base=_base(npros=10),
        sweeps={"maxtransize": SIZE_GRID, "ltot": LTOT_GRID},
        series_fields=("maxtransize",),
        y_fields=("throughput", "response_time"),
        expected_shape=(
            "Smaller transactions give much higher throughput and steeper "
            "curves; the optimum shifts right with smaller sizes but stays "
            "below ~200 locks; response time flattens for small sizes."
        ),
    )


def figure7():
    """Fig 7 — throughput vs locks × lock I/O time."""
    return ExperimentSpec(
        key="fig7",
        title="Effects of number of locks and lock I/O time on throughput "
        "(npros = 10)",
        base=_base(npros=10),
        sweeps={"liotime": LIOTIME_GRID, "ltot": LTOT_GRID},
        series_fields=("liotime",),
        y_fields=("throughput",),
        expected_shape=(
            "Lower lock I/O time tolerates more locks; with liotime = 0 "
            "the curve has a flat extremum from ~100 locks up to 5000 — "
            "fine granularity stops hurting but does not help."
        ),
    )


def figure8():
    """Fig 8 — Fig 2's sweep under random partitioning."""
    return ExperimentSpec(
        key="fig8",
        title="Effects of number of locks and number of processors on "
        "throughput (random partitioning)",
        base=_base(partitioning="random"),
        sweeps={"npros": NPROS_GRID, "ltot": LTOT_GRID},
        series_fields=("npros",),
        y_fields=("throughput",),
        expected_shape=(
            "Same ordering and convexity as Fig 2 but uniformly lower "
            "throughput than horizontal partitioning at equal npros."
        ),
    )


def figure9():
    """Fig 9 — placement strategies, large transactions."""
    return ExperimentSpec(
        key="fig9",
        title="Effects of number of locks and granule placement on "
        "throughput with large transactions (maxtransize = 500)",
        base=_base(maxtransize=500),
        sweeps={
            "placement": PLACEMENT_GRID,
            "npros": (1, 30),
            "ltot": LTOT_GRID,
        },
        series_fields=("placement", "npros"),
        y_fields=("throughput",),
        expected_shape=(
            "Random/worst placement: throughput falls from ltot = 1 to "
            "ltot ≈ mean size (250), then recovers toward ltot = dbsize; "
            "best placement keeps the convex Fig 2 shape."
        ),
    )


def figure10():
    """Fig 10 — placement strategies, small transactions."""
    return ExperimentSpec(
        key="fig10",
        title="Effects of number of locks and granule placement on "
        "throughput with small transactions (maxtransize = 50)",
        base=_base(maxtransize=50),
        sweeps={
            "placement": PLACEMENT_GRID,
            "npros": (1, 30),
            "ltot": LTOT_GRID,
        },
        series_fields=("placement", "npros"),
        y_fields=("throughput",),
        expected_shape=(
            "Same pattern as Fig 9 with the trough near the smaller mean "
            "size (25); throughput rises from there to ltot = dbsize, "
            "where fine granularity wins for random access."
        ),
    )


def figure11():
    """Fig 11 — placement strategies under the 80/20 size mix."""
    return ExperimentSpec(
        key="fig11",
        title="Effects of number of locks and granule placement on "
        "throughput with mixed transactions: 80% small and 20% large "
        "(npros = 30)",
        base=_base(npros=30, workload="mixed"),
        sweeps={"placement": PLACEMENT_GRID, "ltot": LTOT_GRID},
        series_fields=("placement",),
        y_fields=("throughput",),
        expected_shape=(
            "Curves fall between the all-small (Fig 10) and all-large "
            "(Fig 9) extremes, pulled substantially down by the 20% large "
            "transactions."
        ),
    )


def figure12():
    """Fig 12 — heavy load (ntrans = 200) × placement strategies."""
    return ExperimentSpec(
        key="fig12",
        title="Effects of number of locks and granule placement on "
        "throughput with large number of transactions (ntrans = 200, "
        "npros = 20, maxtransize = 500)",
        base=_base(ntrans=200, npros=20, maxtransize=500),
        sweeps={"placement": PLACEMENT_GRID, "ltot": LTOT_GRID},
        series_fields=("placement",),
        y_fields=("throughput",),
        expected_shape=(
            "Under heavy load the finest granularity (ltot = dbsize) "
            "yields lower throughput than coarse granularity: lock "
            "overhead scales with ntrans × ltot while most extra requests "
            "are denied."
        ),
    )


# -- ablations beyond the paper's exhibits --------------------------------


def ablation_conflict_engine():
    """Probabilistic vs explicit lock-table conflicts on the Fig 2 grid."""
    return ExperimentSpec(
        key="ablation_conflict",
        title="Ablation: probabilistic interval model vs explicit lock "
        "table (npros = 10)",
        base=_base(npros=10),
        sweeps={
            "conflict_engine": ("probabilistic", "explicit"),
            "ltot": LTOT_GRID,
        },
        series_fields=("conflict_engine",),
        y_fields=("throughput", "denial_rate"),
        expected_shape=(
            "The two engines agree on curve shape and optimum location; "
            "the interval model slightly overstates conflicts at very "
            "coarse granularity."
        ),
    )


def ablation_protocol():
    """Preclaim vs incremental (claim-as-needed) 2PL — footnote 1."""
    return ExperimentSpec(
        key="ablation_protocol",
        title="Ablation: conservative preclaim vs claim-as-needed 2PL "
        "(explicit engine, npros = 10)",
        base=_base(npros=10, conflict_engine="explicit"),
        sweeps={"protocol": ("preclaim", "incremental"), "ltot": LTOT_GRID},
        series_fields=("protocol",),
        y_fields=("throughput", "deadlock_aborts"),
        expected_shape=(
            "Claim-as-needed does not change the granularity conclusions "
            "(the paper's footnote 1); deadlock aborts stay rare."
        ),
    )


def ablation_cc_protocols():
    """All four CC protocols on the paper's granularity grid.

    The blocking protocols (preclaim, incremental) against the
    restart-oriented family (no-waiting, wound-wait) — the comparison
    Agrawal/Carey/Livny framed for single-site systems, here on the
    paper's multiprocessor grid.  The explicit engine is used for all
    four so the protocols differ only in conflict-resolution policy.
    """
    return ExperimentSpec(
        key="ablation_cc",
        title="Ablation: concurrency-control protocols (explicit engine, "
        "npros = 10)",
        base=_base(npros=10, conflict_engine="explicit"),
        sweeps={
            "protocol": ("preclaim", "incremental", "no-waiting", "wound-wait"),
            "ltot": LTOT_GRID,
        },
        series_fields=("protocol",),
        y_fields=("throughput", "deadlock_aborts", "denial_rate"),
        expected_shape=(
            "All protocols keep the paper's coarse-optimum shape; the "
            "restart-oriented pair trades blocking for aborts, so their "
            "abort counts rise at fine granularity while throughput "
            "stays within a few percent of the blocking protocols "
            "under the paper's low-contention workload."
        ),
    )


def ablation_txn_scheduling():
    """Admission policies under heavy load (the §3.7 remedy)."""
    return ExperimentSpec(
        key="ablation_scheduling",
        title="Ablation: transaction admission policies under heavy load "
        "(ntrans = 200, npros = 20)",
        base=_base(ntrans=200, npros=20, maxtransize=500),
        sweeps={
            "txn_policy": ("fcfs", "smallest", "adaptive"),
            "ltot": (1, 10, 100, 1000, 5000),
        },
        series_fields=("txn_policy",),
        y_fields=("throughput", "denial_rate"),
        expected_shape=(
            "Adaptive admission recovers most of the fine-granularity "
            "throughput loss that FCFS suffers at ntrans = 200 by capping "
            "the lock request rate."
        ),
    )


def ablation_discipline():
    """Sub-transaction scheduling discipline (refs [3]): FCFS vs SJF."""
    return ExperimentSpec(
        key="ablation_discipline",
        title="Ablation: sub-transaction queueing discipline at each "
        "CPU/disk (npros = 10)",
        base=_base(npros=10),
        sweeps={"discipline": ("fcfs", "sjf"), "ltot": (1, 10, 100, 1000, 5000)},
        series_fields=("discipline",),
        y_fields=("throughput", "response_time"),
        expected_shape=(
            "Only a marginal effect on locking-granularity conclusions, "
            "as the paper reports of sub-transaction level scheduling."
        ),
    )


def ablation_escalation():
    """Lock escalation (file/block hierarchy) vs flat granularity."""
    return ExperimentSpec(
        key="ablation_escalation",
        title="Ablation: lock escalation over a file/block hierarchy vs "
        "flat block locking (npros = 10, 10 files)",
        base=_base(
            npros=10, conflict_engine="hierarchical", nfiles=10
        ),
        sweeps={
            "escalation_threshold": (0, 10),
            "ltot": (100, 500, 1000, 5000),
        },
        series_fields=("escalation_threshold",),
        y_fields=("throughput", "lock_overhead", "lock_escalations"),
        expected_shape=(
            "Escalation trims the fine-granularity lock overhead (large "
            "sequential transactions collapse to file locks) and softens "
            "the throughput falloff past the optimum, approximating the "
            "Gamma-style block+file design the paper's conclusion "
            "recommends."
        ),
    )


def ablation_read_mix():
    """Read/write mix: shared locks soften the granularity trade-off."""
    return ExperimentSpec(
        key="ablation_readmix",
        title="Ablation: fraction of update transactions (S/X sharing) "
        "vs lock granularity (npros = 10)",
        base=_base(npros=10),
        sweeps={
            "write_fraction": (1.0, 0.5, 0.1),
            "ltot": (1, 10, 100, 1000, 5000),
        },
        series_fields=("write_fraction",),
        y_fields=("throughput", "denial_rate"),
        expected_shape=(
            "Lower write fractions raise throughput and cut denials at "
            "every granularity (readers share); the convex shape and the "
            "sub-200 optimum persist because lock overhead is mode-"
            "independent."
        ),
    )


def ablation_analytic():
    """Sim-vs-analytic cross-validation grid (the analytic fast path).

    A deliberately small grid (3 lock counts × 2 processor counts)
    spanning the optimum and both flanks, used by ``repro-locking
    crossval`` and CI's crossval-smoke job to bound the mean-value
    model's error cheaply.  The full Fig. 2 grid is the thorough
    validation; this is the canary.
    """
    return ExperimentSpec(
        key="ablation_analytic",
        title="Ablation: simulated vs analytic mean-value model "
        "(npros = 10, 30)",
        base=_base(),
        sweeps={"npros": (10, 30), "ltot": (10, 100, 1000)},
        series_fields=("npros",),
        y_fields=("throughput", "response_time"),
        expected_shape=(
            "The analytic model tracks simulated throughput within "
            "~15% mean relative error on valid cells; both agree the "
            "optimum sits at intermediate granularity."
        ),
    )


def ablation_classes():
    """Multi-class mix: per-class granularity optima diverge.

    A two-class OLTP/batch mix (80% short transactions of up to 50
    blocks, 20% batch jobs of up to 1000) swept over the paper's lock
    grid.  The per-class throughput columns (``throughput__oltp`` /
    ``throughput__batch``) expose what the aggregate curve averages
    away: the short-transaction class peaks at a finer granularity
    than the batch class, which prefers coarser locks because its
    members pay lock overhead per granule across huge access sets —
    the paper's size-dependent optimum (§3.2), now visible *within*
    one workload.
    """
    return ExperimentSpec(
        key="ablation_classes",
        title="Ablation: two-class OLTP/batch mix vs lock granularity "
        "(npros = 10, 80% oltp <= 50, 20% batch <= 1000)",
        base=_base(
            npros=10,
            workload="classes",
            txn_classes="oltp:0.8:50,batch:0.2:1000",
        ),
        sweeps={"ltot": LTOT_GRID},
        series_fields=(),
        y_fields=(
            "throughput",
            "throughput__oltp",
            "throughput__batch",
            "response_time__oltp",
            "response_time__batch",
        ),
        expected_shape=(
            "Both per-class curves stay convex in ltot but peak at "
            "different granularities: oltp near ~50 locks, batch nearer "
            "~20 — the optimum the aggregate curve averages away."
        ),
    )


def ablation_commit():
    """Distributed commit protocols vs granularity × network latency.

    The paper's machine, split across a 3-node cluster: every
    transaction still runs its sub-transactions on the shared
    multiprocessor, but the commit decision now crosses the network.
    2PC (presumed abort) pays two round trips to every participant on
    the critical path; primary-copy replication pays roughly one
    forward trip and lets readers commit locally.  Sweeping the
    paper's ``ltot`` grid at two network latencies shows how the
    granularity optimum shifts when commit latency, not lock
    contention, dominates response time.
    """
    return ExperimentSpec(
        key="ablation_commit",
        title="Ablation: distributed commit protocol vs lock granularity "
        "and network latency (npros = 10, nnodes = 3)",
        base=_base(npros=10, nnodes=3),
        sweeps={
            "commit_protocol": ("2pc", "primary-copy"),
            "net_latency": (0.05, 0.5),
            "ltot": LTOT_GRID,
        },
        series_fields=("commit_protocol", "net_latency"),
        y_fields=("throughput", "response_time", "commit_latency",
                  "messages_sent"),
        expected_shape=(
            "Both protocols keep the convex granularity curve; higher "
            "network latency flattens it (commit time dominates), and "
            "primary-copy sits above 2PC at every point since readers "
            "skip the vote round."
        ),
    )


def ablation_open_system():
    """Open Poisson arrivals: saturation knee vs lock granularity."""
    return ExperimentSpec(
        key="ablation_open",
        title="Ablation: open-system saturation vs lock granularity "
        "(npros = 10, Poisson arrivals)",
        base=_base(npros=10, arrival_process="open"),
        sweeps={
            "ltot": (20, 5000),
            "arrival_rate": (0.05, 0.1, 0.15, 0.2),
        },
        x_field="arrival_rate",
        series_fields=("ltot",),
        y_fields=("throughput", "response_time", "mean_blocked"),
        expected_shape=(
            "With a good granularity the system tracks the offered load "
            "up to its capacity (~0.19/unit); record-level locking "
            "saturates near 0.05/unit and collapses beyond it as lock "
            "work floods the disks."
        ),
    )


#: Registry of every exhibit and ablation, by key.
EXHIBITS = {
    "table1": table1,
    "fig2": figure2,
    "fig3": figure3,
    "fig4": figure4,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "fig10": figure10,
    "fig11": figure11,
    "fig12": figure12,
    "ablation_conflict": ablation_conflict_engine,
    "ablation_protocol": ablation_protocol,
    "ablation_cc": ablation_cc_protocols,
    "ablation_scheduling": ablation_txn_scheduling,
    "ablation_discipline": ablation_discipline,
    "ablation_escalation": ablation_escalation,
    "ablation_readmix": ablation_read_mix,
    "ablation_analytic": ablation_analytic,
    "ablation_classes": ablation_classes,
    "ablation_commit": ablation_commit,
    "ablation_open": ablation_open_system,
}


def get_exhibit(key):
    """Build the spec for *key* (accepts ``2``, ``"2"``, or ``"fig2"``)."""
    name = str(key)
    if name.isdigit():
        name = "fig{}".format(name)
    try:
        return EXHIBITS[name]()
    except KeyError:
        raise KeyError(
            "unknown exhibit {!r}; known: {}".format(key, ", ".join(sorted(EXHIBITS)))
        ) from None
