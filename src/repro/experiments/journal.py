"""Crash-safe sweep journal: append-only record of completed cells.

A sweep is identified by the ordered content addresses (cache keys) of
all its ``(configuration, replication)`` cells — :func:`sweep_id`
hashes them, so the same spec with the same replication count always
maps to the same id, and *any* change to the grid maps to a different
one.  While the sweep runs, the journal appends one JSON line per
completed cell and flushes immediately, so a ``kill -9`` at any
instant leaves a valid prefix on disk.

On ``--resume`` the journal is reloaded tolerantly: a torn final line
(the usual crash artefact) is skipped, and a journal written for a
*different* sweep id is discarded wholesale rather than poisoning the
resume.  The journal records progress only; the results themselves
live in the content-addressed cache, which is what a resumed sweep
reads them back from.

File format (JSONL)::

    {"sweep": "<id>", "cells": 12, "label": "table1"}   # header
    {"done": "<cache key>"}                             # one per cell
    {"done": "<cache key>", "provenance": "analytic"}   # accelerator fill
    {"done": "<cache key>", "result": {...}}            # faulted sweeps
    {"finished": true}                                  # clean end

Faulted sweeps (a :class:`~repro.faults.plan.FaultPlan` in force)
never touch the result cache, so their cells journal the full output
record inline — ``load_results`` reads them back on resume, and the
JSON float round-trip is exact, so a resumed faulted sweep is
bit-identical to an uninterrupted one.
"""

import hashlib
import json
import os


def sweep_id(cell_keys):
    """Stable identity of a sweep: hash of its ordered cell addresses."""
    digest = hashlib.sha256("\n".join(cell_keys).encode("ascii"))
    return digest.hexdigest()[:16]


class SweepJournal:
    """Append-only progress journal for one sweep file.

    Parameters
    ----------
    path:
        Journal file location; parent directories are created on
        :meth:`begin`.
    """

    def __init__(self, path):
        self.path = str(path)
        self._handle = None
        self._sweep = None

    def __repr__(self):
        return "<SweepJournal {!r}>".format(self.path)

    # -- reading ---------------------------------------------------------

    def load(self, sweep):
        """Completed cell keys journalled for sweep id *sweep*.

        Tolerant: a missing file, a journal for another sweep, or an
        unparsable header yields an empty set; unparsable body lines
        (torn tail writes) are skipped individually.
        """
        try:
            with open(self.path) as handle:
                lines = handle.read().splitlines()
        except OSError:
            return set()
        if not lines:
            return set()
        try:
            header = json.loads(lines[0])
            recorded = header.get("sweep")
        except ValueError:
            return set()
        if recorded != sweep:
            return set()
        done = set()
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn write at the crash point
            if isinstance(entry, dict) and "done" in entry:
                done.add(entry["done"])
        return done

    def load_results(self, sweep):
        """Inline result documents journalled for sweep id *sweep*.

        Returns ``{cell key: output dict}`` for every ``done`` entry
        that carried a ``result`` payload (faulted sweeps).  Same
        tolerance rules as :meth:`load`.
        """
        try:
            with open(self.path) as handle:
                lines = handle.read().splitlines()
        except OSError:
            return {}
        if not lines:
            return {}
        try:
            if json.loads(lines[0]).get("sweep") != sweep:
                return {}
        except ValueError:
            return {}
        results = {}
        for line in lines[1:]:
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn write at the crash point
            if isinstance(entry, dict) and "done" in entry and "result" in entry:
                results[entry["done"]] = entry["result"]
        return results

    def finished(self, sweep):
        """True when the journal records a clean end of sweep *sweep*."""
        try:
            with open(self.path) as handle:
                lines = handle.read().splitlines()
        except OSError:
            return False
        if not lines:
            return False
        try:
            if json.loads(lines[0]).get("sweep") != sweep:
                return False
            return any(
                json.loads(line).get("finished") for line in lines[1:]
            )
        except ValueError:
            return False

    # -- writing ---------------------------------------------------------

    def begin(self, sweep, cells, label=None, keep=False):
        """Open the journal for appending under sweep id *sweep*.

        With ``keep=True`` an existing journal for the *same* sweep is
        preserved and appended to (the resume path); otherwise, and
        always when the on-disk journal belongs to a different sweep,
        the file is rewritten with a fresh header.
        """
        preserve = keep and self._matches(sweep)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if preserve:
            self._handle = open(self.path, "a")
        else:
            self._handle = open(self.path, "w")
            header = {"sweep": sweep, "cells": cells}
            if label is not None:
                header["label"] = label
            self._write(header)
        self._sweep = sweep

    def _matches(self, sweep):
        try:
            with open(self.path) as handle:
                first = handle.readline()
            return json.loads(first).get("sweep") == sweep
        except (OSError, ValueError):
            return False

    def record(self, key, provenance=None, result=None):
        """Append one completed cell and flush it to disk.

        *provenance* tags cells not produced by the simulator (the
        analytic accelerator records ``"analytic"``); plain simulated
        or cached cells omit the field.  :meth:`load` treats both as
        done.  *result* (an output dict) is stored inline for faulted
        sweeps, whose results never reach the cache.
        """
        if self._handle is not None:
            entry = {"done": key}
            if provenance is not None:
                entry["provenance"] = provenance
            if result is not None:
                entry["result"] = result
            self._write(entry)

    def finish(self):
        """Append the clean-completion marker."""
        if self._handle is not None:
            self._write({"finished": True})

    def close(self):
        """Flush and close the journal file (idempotent)."""
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            self._handle.close()
            self._handle = None

    def _write(self, entry):
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        try:
            os.fsync(self._handle.fileno())
        except OSError:
            pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
