"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the cartesian product of parameter
sweeps applied to a base :class:`SimulationParameters`, plus metadata
saying which field is the x-axis, which field(s) distinguish the
curves (series), and which outputs the exhibit plots.
"""

import itertools
from dataclasses import dataclass, field

from repro.core.parameters import SimulationParameters

#: The lock-count grid used throughout the paper (log-spaced, 1..dbsize).
LTOT_GRID = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)

#: Processor counts of §3.1 (Figures 2–5, 8).
NPROS_GRID = (1, 2, 5, 10, 20, 30)

#: Default horizon for harness runs.  The paper's own ``tmax`` is not
#: recoverable from the text; 2000 time units completes hundreds of
#: transactions per configuration while keeping a full-figure sweep in
#: the minutes range (see DESIGN.md).
DEFAULT_TMAX = 2000.0


@dataclass
class ExperimentSpec:
    """One exhibit's sweep definition.

    Attributes
    ----------
    key:
        Short id (``"fig2"``, ``"table1"``).
    title:
        The paper's caption, abbreviated.
    base:
        Parameters shared by every configuration.
    sweeps:
        Mapping of parameter name → values; configurations are the
        cartesian product in declaration order.
    x_field:
        The swept parameter used as the x-axis (usually ``ltot``).
    series_fields:
        Swept parameter(s) that distinguish curves.
    y_fields:
        Output fields the exhibit reports.
    expected_shape:
        One-sentence acceptance criterion from the paper's prose,
        recorded in EXPERIMENTS.md.
    """

    key: str
    title: str
    base: SimulationParameters
    sweeps: dict = field(default_factory=dict)
    x_field: str = "ltot"
    series_fields: tuple = ()
    y_fields: tuple = ("throughput",)
    expected_shape: str = ""

    def configurations(self):
        """All :class:`SimulationParameters` in the sweep product."""
        if not self.sweeps:
            return [self.base]
        names = list(self.sweeps)
        configs = []
        for values in itertools.product(*(self.sweeps[n] for n in names)):
            configs.append(self.base.replace(**dict(zip(names, values))))
        return configs

    def series_key(self, params):
        """The tuple of series-field values identifying one curve."""
        return tuple(getattr(params, name) for name in self.series_fields)

    def series_label(self, params):
        """Human-readable label of the curve *params* belongs to."""
        parts = [
            "{}={}".format(name, getattr(params, name))
            for name in self.series_fields
        ]
        return ", ".join(parts) if parts else "all"

    def scaled(self, tmax=None, ltot_grid=None, replace_sweeps=None, **base_changes):
        """A cheaper copy for quick runs and benchmarks.

        ``tmax`` shortens the horizon; ``ltot_grid`` substitutes the
        lock-count sweep; ``replace_sweeps`` overrides whole sweep
        entries; extra keywords patch the base parameters.
        """
        base = self.base
        if tmax is not None:
            base = base.replace(tmax=tmax)
        if base_changes:
            base = base.replace(**base_changes)
        sweeps = dict(self.sweeps)
        if ltot_grid is not None and "ltot" in sweeps:
            sweeps["ltot"] = tuple(ltot_grid)
        if replace_sweeps:
            sweeps.update(replace_sweeps)
        return ExperimentSpec(
            key=self.key,
            title=self.title,
            base=base,
            sweeps=sweeps,
            x_field=self.x_field,
            series_fields=self.series_fields,
            y_fields=self.y_fields,
            expected_shape=self.expected_shape,
        )
