"""Content-addressed cache of single simulation runs.

Every completed simulation is a pure function of its
:class:`~repro.core.parameters.SimulationParameters` (the master seed
is one of them) and of the simulator's semantics, versioned by
:data:`repro.core.model.MODEL_VERSION`.  That makes results safe to
memoise on disk: an entry's address is a SHA-256 over the canonical
JSON of ``(schema, model-version, parameters)``, so any change to a
parameter, to the seed, or to the model version lands on a different
address and old entries are simply never read again.

Entries are stored one JSON file per run under
``results/.cache/<aa>/<hash>.json`` (``aa`` is the first hash byte,
keeping directories small).  The environment variables
``REPRO_CACHE_DIR`` (relocate the cache) and ``REPRO_CACHE=0``
(disable the default cache entirely) are honoured by
:func:`default_cache_dir` / :func:`cache_enabled`, which
:func:`repro.experiments.runner.run_experiment` consults.

The cache is deliberately forgiving: a missing, corrupted, truncated
or version-mismatched file is treated as a miss (and overwritten on
the next store), and I/O errors while writing are swallowed — caching
must never be able to fail a sweep.
"""

import hashlib
import json
import logging
import os
import tempfile

from repro.core.model import MODEL_VERSION
from repro.core.results import RESULT_FIELDS, SimulationResult

logger = logging.getLogger(__name__)

#: On-disk layout version; bump when the entry format itself changes.
CACHE_SCHEMA = 1

#: Output fields added after entries may already have been written.
#: Entries from before a field existed stay readable by assuming the
#: field's no-fault value, instead of silently invalidating the whole
#: cache on every result-schema extension.
_COMPAT_DEFAULTS = {
    "failure_aborts": 0,
    "availability": 1.0,
    "degraded_throughput": 0.0,
    "commit_aborts": 0,
    "commit_latency": 0.0,
    "messages_sent": 0,
    "messages_dropped": 0,
    "partition_time": 0.0,
}

#: Distributed-cluster parameters added after cache entries (and the
#: committed golden digests) already existed.  At their single-node
#: defaults they are dropped from the canonical params document, so
#: every pre-existing address and entry stays byte-identical; any
#: non-default value is kept and lands on a fresh address.
_SINGLE_NODE_DEFAULTS = {
    "nnodes": 1,
    "commit_protocol": "local",
    "net_latency": 0.0,
    "net_jitter": 0.0,
    "commit_timeout": 5.0,
}


def params_document(params):
    """Canonical params dict for addressing and entry comparison.

    ``params.as_dict()`` minus any distributed field still at its
    single-node default (see :data:`_SINGLE_NODE_DEFAULTS`) — the same
    omit-when-default trick :func:`repro.policies.policy_versions`
    uses, applied to parameters instead of policies.
    """
    document = params.as_dict()
    for name, default in _SINGLE_NODE_DEFAULTS.items():
        if document.get(name) == default:
            del document[name]
    return document


def result_from_document(params, outputs):
    """Rebuild a :class:`SimulationResult` from a stored output dict.

    Missing fields fall back to :data:`_COMPAT_DEFAULTS` (entries
    written before a field existed); any other absence raises
    ``KeyError``.  Shared by cache reads and journal-resumed faulted
    sweeps, so both paths reconstruct results identically.
    """
    values = {}
    for name in RESULT_FIELDS:
        if name in outputs:
            values[name] = outputs[name]
        elif name in _COMPAT_DEFAULTS:
            values[name] = _COMPAT_DEFAULTS[name]
        else:
            raise KeyError(name)
    # Multi-class breakdowns are stored only when present (the
    # single-class entry format is unchanged); absent means empty.
    per_class = tuple(
        dict(entry) for entry in outputs.get("per_class", ())
    )
    return SimulationResult(params=params, per_class=per_class, **values)

#: Default location, relative to the working directory.
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")


def default_cache_dir():
    """Cache root: ``$REPRO_CACHE_DIR`` or ``results/.cache``."""
    return os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR


def cache_enabled():
    """False when caching is globally disabled via ``REPRO_CACHE=0``."""
    return os.environ.get("REPRO_CACHE", "") not in ("0", "no", "off")


def cache_key(params, model_version=MODEL_VERSION):
    """Stable content address of one run: hex SHA-256 digest.

    The address covers the full parameter set (seed included), the
    model version and the cache schema, canonicalised as
    sorted-key/compact JSON so it is independent of dict ordering,
    Python version and process.

    When a selected policy declares a behavioural ``version`` other
    than 1 (see :func:`repro.policies.policy_versions`), the versions
    are folded into the address too — so evolving one protocol forks
    only *its* cache entries.  For all-default versions the document
    is byte-identical to the historical format, keeping every
    previously written address (and the committed golden digests)
    valid.
    """
    from repro.policies import policy_versions

    document = {
        "schema": CACHE_SCHEMA,
        "model_version": model_version,
        "params": params_document(params),
    }
    versions = policy_versions(params)
    if versions is not None:
        document["policy_versions"] = versions
    blob = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Persistent map ``SimulationParameters -> SimulationResult``.

    Parameters
    ----------
    root:
        Directory holding the entries (created lazily on first store);
        defaults to :func:`default_cache_dir`.
    model_version:
        Simulator version baked into every address; defaults to
        :data:`repro.core.model.MODEL_VERSION`.  Entries written under
        a different version are invisible.
    """

    def __init__(self, root=None, model_version=MODEL_VERSION):
        self.root = str(root) if root is not None else default_cache_dir()
        self.model_version = model_version

    def __repr__(self):
        return "<ResultCache root={!r} model_version={}>".format(
            self.root, self.model_version
        )

    def path_for(self, params):
        """Entry file path for *params* (whether or not it exists)."""
        key = cache_key(params, self.model_version)
        return os.path.join(self.root, key[:2], key + ".json")

    def manifest_path_for(self, params):
        """Provenance manifest path for *params*' entry.

        The ``.manifest`` suffix (not ``.json``) keeps manifests out
        of :meth:`__len__` / :meth:`clear`, which count cache entries.
        """
        key = cache_key(params, self.model_version)
        return os.path.join(self.root, key[:2], key + ".manifest")

    def put_manifest(self, params, manifest):
        """Store a provenance *manifest* dict next to the entry.

        Best-effort, like :meth:`put`: returns the path or ``None``.
        """
        from repro.obs.manifest import write_manifest

        return write_manifest(self.manifest_path_for(params), manifest)

    def get_manifest(self, params):
        """The stored manifest dict, or ``None``."""
        from repro.obs.manifest import load_manifest

        return load_manifest(self.manifest_path_for(params))

    def get(self, params):
        """The cached :class:`SimulationResult`, or ``None`` on a miss.

        Any unreadable, unparsable or inconsistent entry counts as a
        miss — the caller just re-simulates and overwrites it.  A file
        that exists but cannot be decoded (truncated write, disk
        corruption) is additionally *quarantined*: renamed to
        ``<entry>.corrupt`` with a logged warning, so the damaged
        bytes are kept for inspection and can never shadow the fresh
        entry the recompute will store.
        """
        path = self.path_for(params)
        try:
            with open(path) as handle:
                document = json.load(handle)
        except OSError:
            return None  # plain miss: no entry on disk
        except ValueError:
            self._quarantine(path, "undecodable JSON")
            return None
        try:
            if document.get("schema") != CACHE_SCHEMA:
                return None
            if document.get("model_version") != self.model_version:
                return None
            if document.get("params") != params_document(params):
                return None  # hash collision or hand-edited entry
            return result_from_document(params, document["result"])
        except (ValueError, TypeError, KeyError, AttributeError):
            self._quarantine(path, "malformed entry structure")
            return None

    def _quarantine(self, path, reason):
        """Move a corrupt entry aside as ``<entry>.corrupt``."""
        try:
            os.replace(path, path + ".corrupt")
            logger.warning(
                "quarantined corrupt cache entry %s (%s); will recompute",
                path,
                reason,
            )
        except OSError:
            pass  # caching must never be able to fail a sweep

    def put(self, params, result):
        """Store *result* for *params*; best-effort (errors swallowed).

        The entry is written to a temporary file and atomically
        renamed, so concurrent readers and writers never observe a
        half-written entry.
        """
        path = self.path_for(params)
        document = {
            "schema": CACHE_SCHEMA,
            "model_version": self.model_version,
            "params": params_document(params),
            "result": {
                name: getattr(result, name) for name in RESULT_FIELDS
            },
        }
        if result.per_class:
            document["result"]["per_class"] = [
                dict(entry) for entry in result.per_class
            ]
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                dir=os.path.dirname(path), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(document, handle, sort_keys=True)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
                raise
            return path
        except OSError:
            return None

    def delete(self, params):
        """Drop the entry for *params*; True if one existed."""
        try:
            os.unlink(self.path_for(params))
            return True
        except OSError:
            return False

    def clear(self):
        """Remove every entry under the root; returns the count."""
        removed = 0
        for directory, _subdirs, files in os.walk(self.root):
            for name in files:
                if name.endswith(".json"):
                    try:
                        os.unlink(os.path.join(directory, name))
                        removed += 1
                    except OSError:
                        pass
        return removed

    def __len__(self):
        """Number of entries currently on disk (any model version)."""
        total = 0
        for _directory, _subdirs, files in os.walk(self.root):
            total += sum(1 for name in files if name.endswith(".json"))
        return total
