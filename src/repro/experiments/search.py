"""Adaptive search for the optimal lock granularity.

A grid sweep (the figures' method) spends most of its runs far from
the optimum.  :func:`find_optimal_ltot` instead homes in with a
log-domain golden-section-style search: evaluate a coarse bracket,
keep the best point's neighbourhood, and subdivide until the bracket
is tight — typically 10–15 simulations instead of a 12-point grid with
replications everywhere.

Throughput curves in this model are unimodal in ``log(ltot)`` for best
placement (convex trade-off, Figure 2); for random/worst placement
they are bimodal with peaks at the extremes (Figures 9–10), so the
search takes an explicit bracket and the caller can search each side.
"""

import math

from repro.core.model import simulate_replications


def _log_spaced(lo, hi, points):
    if lo == hi:
        return [lo]
    log_lo, log_hi = math.log(lo), math.log(hi)
    raw = [
        round(math.exp(log_lo + i * (log_hi - log_lo) / (points - 1)))
        for i in range(points)
    ]
    seen = []
    for value in raw:
        value = max(lo, min(hi, value))
        if value not in seen:
            seen.append(value)
    return seen


class SearchOutcome:
    """Result of :func:`find_optimal_ltot`.

    Attributes
    ----------
    best_ltot:
        The winning granule count.
    best_value:
        Its objective value (mean over replications).
    evaluations:
        Mapping ``ltot`` → objective value for every point simulated.
    """

    def __init__(self, best_ltot, best_value, evaluations):
        self.best_ltot = best_ltot
        self.best_value = best_value
        self.evaluations = dict(evaluations)

    def __repr__(self):
        return "<SearchOutcome ltot={} value={:.4g} ({} evals)>".format(
            self.best_ltot, self.best_value, len(self.evaluations)
        )


def find_optimal_ltot(
    params,
    objective="throughput",
    maximize=True,
    lo=1,
    hi=None,
    replications=2,
    coarse_points=5,
    rounds=3,
):
    """Search ``[lo, hi]`` for the ``ltot`` optimising *objective*.

    Parameters
    ----------
    params:
        Base configuration (its ``ltot`` is overridden per evaluation).
    objective:
        Result field to optimise.
    maximize:
        Maximise (default) or minimise the objective.
    lo / hi:
        Search bracket (default ``1 .. dbsize``).
    replications:
        Replications per evaluation (common random numbers across
        candidates via matching seeds).
    coarse_points:
        Points in the initial log-spaced bracket.
    rounds:
        Refinement rounds; each re-brackets around the incumbent.

    Returns
    -------
    SearchOutcome
    """
    if hi is None:
        hi = params.dbsize
    if not 1 <= lo <= hi <= params.dbsize:
        raise ValueError("need 1 <= lo <= hi <= dbsize")
    evaluations = {}

    def evaluate(ltot):
        if ltot not in evaluations:
            outcome = simulate_replications(
                params.replace(ltot=ltot), replications=replications
            )
            evaluations[ltot] = outcome.mean(objective)
        return evaluations[ltot]

    candidates = _log_spaced(lo, hi, coarse_points)
    chooser = max if maximize else min
    for _ in range(rounds):
        for ltot in candidates:
            evaluate(ltot)
        incumbent = chooser(evaluations, key=evaluations.get)
        ordered = sorted(evaluations)
        position = ordered.index(incumbent)
        bracket_lo = ordered[max(0, position - 1)]
        bracket_hi = ordered[min(len(ordered) - 1, position + 1)]
        if bracket_hi <= bracket_lo + 1:
            break
        candidates = _log_spaced(bracket_lo, bracket_hi, 4)
        if all(c in evaluations for c in candidates):
            break
    best = chooser(evaluations, key=evaluations.get)
    return SearchOutcome(best, evaluations[best], evaluations)
