"""Message-passing network model over the DES kernel.

The distributed cluster model (see DESIGN.md §12) exchanges
point-to-point messages between logical *sites*.  This module supplies
the transport: a :class:`Network` that delivers messages after a
seeded latency (base one-way latency, optional uniform jitter, plus
any per-link or global extra delay), using the kernel's zero-allocation
:meth:`~repro.des.engine.Environment.schedule_callback` path, and a
:class:`Partition` state that the fault injector can flip to cut the
cluster into disconnected components.

Delivery semantics are deliberately simple and deterministic:

- A message to an unreachable destination (other side of a partition,
  or either endpoint marked crashed) is **dropped at send time** and
  counted; there is no in-flight re-check, so a partition that starts
  after a send does not retroactively destroy the message.
- A dropped message invokes no handler — protocols detect loss with
  their own timeouts, exactly as a real coordinator would.
- All latency randomness comes from one injected ``rng`` (the model's
  ``"net"`` stream), so a (params, seed) pair fully determines every
  delivery time.
"""

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Message:
    """One point-to-point message (immutable envelope)."""

    src: int
    dst: int
    kind: str
    payload: dict = field(default_factory=dict)
    sent_at: float = 0.0


class Partition:
    """A split of the cluster's sites into disconnected groups.

    Two sites can talk iff they are in the same group.  A site missing
    from every group is completely isolated (reachable only from
    itself) — this doubles as the "crashed node" state.
    """

    def __init__(self, groups):
        groups = tuple(frozenset(group) for group in groups)
        if len(groups) < 1 or any(not group for group in groups):
            raise ValueError("groups must be non-empty site sets")
        seen = set()
        for group in groups:
            if group & seen:
                raise ValueError("groups must be disjoint, got {!r}".format(groups))
            seen |= group
        self.groups = groups

    def component(self, site):
        """The group containing *site* (singleton when unlisted)."""
        for group in self.groups:
            if site in group:
                return group
        return frozenset((site,))

    def reachable(self, a, b):
        """True when *a* and *b* are in the same group."""
        return a == b or (a in self.component(b))

    def majority(self, nnodes):
        """The strict-majority group, or ``None`` when no group has one."""
        for group in self.groups:
            if 2 * len(group) > nnodes:
                return group
        return None

    def __repr__(self):
        return "Partition({})".format(
            " | ".join(
                "{{{}}}".format(",".join(map(str, sorted(g)))) for g in self.groups
            )
        )


class Link:
    """Mutable per-link state: extra one-way delay (fault windows)."""

    __slots__ = ("extra",)

    def __init__(self, extra=0.0):
        self.extra = float(extra)


class Network:
    """Seeded message transport between ``nnodes`` cluster sites.

    Parameters
    ----------
    env:
        The simulation :class:`~repro.des.engine.Environment`.
    nnodes:
        Number of sites (>= 1); sites are the ids ``0 .. nnodes-1``.
    latency:
        Base one-way delay for every link.
    jitter:
        Upper bound of a uniform extra delay drawn per delivered
        message (``0`` draws nothing, keeping the stream untouched).
    rng:
        Seeded ``random.Random`` for jitter draws (the ``"net"``
        stream); may be ``None`` when ``jitter == 0``.
    """

    def __init__(self, env, nnodes, latency=0.0, jitter=0.0, rng=None):
        if nnodes < 1:
            raise ValueError("nnodes must be >= 1, got {}".format(nnodes))
        if latency < 0 or jitter < 0:
            raise ValueError(
                "latency and jitter must be >= 0, got latency={} jitter={}".format(
                    latency, jitter
                )
            )
        if jitter > 0 and rng is None:
            raise ValueError("jitter > 0 needs an rng")
        self.env = env
        self.nnodes = nnodes
        self.latency = float(latency)
        self.jitter = float(jitter)
        self.rng = rng
        self.partition_state = None
        self.messages_sent = 0
        self.messages_dropped = 0
        #: Optional RunInstruments sink for live message counters.
        self.instruments = None
        #: Optional callbacks the Cluster hooks for availability accounting.
        self.on_partition = None
        self.on_heal = None
        self._links = {}
        self._global_extra = 0.0

    # -- topology -----------------------------------------------------

    @staticmethod
    def _key(a, b):
        return (a, b) if a <= b else (b, a)

    def link(self, a, b):
        """The (symmetric) link record between sites *a* and *b*."""
        key = self._key(a, b)
        record = self._links.get(key)
        if record is None:
            record = self._links[key] = Link()
        return record

    def set_link_delay(self, a, b, extra):
        """Set the extra one-way delay on one link (0 clears it)."""
        self.link(a, b).extra = float(extra)

    def set_global_delay(self, extra):
        """Set an extra one-way delay applied to every link."""
        self._global_extra = float(extra)

    def delay(self, a, b):
        """One delivery delay draw for a message from *a* to *b*."""
        total = self.latency + self._global_extra
        record = self._links.get(self._key(a, b))
        if record is not None:
            total += record.extra
        if self.jitter > 0.0:
            total += self.rng.uniform(0.0, self.jitter)
        return total

    # -- partition state ----------------------------------------------

    def reachable(self, a, b):
        """True when a message from *a* can currently reach *b*."""
        if self.partition_state is None:
            return True
        return self.partition_state.reachable(a, b)

    def partition(self, groups):
        """Install a partition (replacing any existing one)."""
        state = groups if isinstance(groups, Partition) else Partition(groups)
        self.partition_state = state
        if self.on_partition is not None:
            self.on_partition(state)
        return state

    def heal(self):
        """Remove the current partition, reconnecting every site."""
        self.partition_state = None
        if self.on_heal is not None:
            self.on_heal()

    # -- transport ----------------------------------------------------

    def send(self, src, dst, kind, payload=None, handler=None):
        """Send one message; returns True when it will be delivered.

        Reachable destinations get the message after :meth:`delay`
        time units via ``schedule_callback`` (zero Event allocations);
        *handler* (if any) is then called with the :class:`Message`.
        Unreachable destinations drop the message at send time.
        """
        self.messages_sent += 1
        if self.instruments is not None:
            self.instruments.note_message(kind)
        if not self.reachable(src, dst):
            self.messages_dropped += 1
            if self.instruments is not None:
                self.instruments.note_message_dropped(kind)
            return False
        if handler is not None:
            message = Message(src, dst, kind, payload or {}, self.env.now)
            self.env.schedule_callback(
                lambda: handler(message), self.delay(src, dst)
            )
        elif self.jitter > 0.0:
            # Fire-and-forget still consumes its jitter draw so the
            # stream advances identically whether or not anyone listens.
            self.delay(src, dst)
        return True
