"""Distributed cluster networking: messages, links, and partitions.

See DESIGN.md §12 ("Distributed model").  The package is inert for
single-node runs — the model only builds a :class:`Network` when
``nnodes > 1``, so the paper's original configurations never touch it.
"""

from repro.net.network import Link, Message, Network, Partition

__all__ = ["Link", "Message", "Network", "Partition"]
