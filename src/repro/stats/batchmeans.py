"""The batch means method for single-run confidence intervals.

Split an autocorrelated output sequence into ``b`` contiguous batches,
average each batch, and treat the batch means as (approximately)
independent samples: with large enough batches the lag correlations
die out and a Student-t interval over the batch means is valid.
"""

import math
from dataclasses import dataclass

from repro.stats.student_t import t_ppf


@dataclass(frozen=True)
class BatchMeansResult:
    """Outcome of a batch-means analysis.

    Attributes
    ----------
    mean:
        Grand mean of the observations used (trailing remainder after
        equal batching is dropped).
    half_width:
        Half-width of the confidence interval.
    batches:
        Number of batches used.
    batch_size:
        Observations per batch.
    batch_means:
        The per-batch averages (useful for diagnostics).
    """

    mean: float
    half_width: float
    batches: int
    batch_size: int
    batch_means: tuple

    @property
    def interval(self):
        """(lower, upper) confidence bounds."""
        return (self.mean - self.half_width, self.mean + self.half_width)


def recommended_batches(n):
    """The usual heuristic: 10–30 batches, scaled to the sample count."""
    if n < 20:
        return max(2, n // 2)
    return max(10, min(30, n // 10))


def batch_means_ci(samples, batches=None, confidence=0.95):
    """Confidence interval for the mean of an autocorrelated sequence.

    Parameters
    ----------
    samples:
        Ordered observations from one run (e.g. response times in
        completion order).
    batches:
        Number of contiguous batches (default:
        :func:`recommended_batches`).
    confidence:
        Interval confidence level.

    Raises
    ------
    ValueError
        With fewer than 4 samples or fewer than 2 batches.
    """
    samples = list(samples)
    n = len(samples)
    if n < 4:
        raise ValueError("need at least 4 samples, got {}".format(n))
    if batches is None:
        batches = recommended_batches(n)
    if batches < 2 or batches > n:
        raise ValueError(
            "batches must be in [2, {}], got {}".format(n, batches)
        )
    size = n // batches
    used = batches * size
    means = []
    for i in range(batches):
        chunk = samples[i * size:(i + 1) * size]
        means.append(sum(chunk) / size)
    grand = sum(samples[:used]) / used
    variance = sum((m - grand) ** 2 for m in means) / (batches - 1)
    t_value = t_ppf(0.5 + confidence / 2.0, batches - 1)
    half = t_value * math.sqrt(variance / batches)
    return BatchMeansResult(
        mean=grand,
        half_width=half,
        batches=batches,
        batch_size=size,
        batch_means=tuple(means),
    )


def lag1_autocorrelation(samples):
    """Lag-1 autocorrelation estimate (dependence diagnostic).

    Near-zero values over *batch means* indicate the batch size is
    large enough for the independence assumption.
    """
    samples = list(samples)
    n = len(samples)
    if n < 3:
        raise ValueError("need at least 3 samples, got {}".format(n))
    mean = sum(samples) / n
    denominator = sum((s - mean) ** 2 for s in samples)
    if denominator == 0:
        return 0.0
    numerator = sum(
        (samples[i] - mean) * (samples[i + 1] - mean) for i in range(n - 1)
    )
    return numerator / denominator
