"""Simulation output analysis.

Single-run confidence intervals are tricky because consecutive
response-time observations in a closed queueing model are strongly
autocorrelated; the classical remedy is the *batch means* method.
This package provides:

:func:`batch_means_ci`
    A confidence interval for the steady-state mean from one long run.
:func:`lag1_autocorrelation`
    A quick dependence diagnostic (near zero for good batch sizes).
:func:`recommended_batches`
    The usual 10–30 batch heuristic for a sample count.

Cross-replication intervals live on
:class:`repro.core.results.ReplicatedResult`; this module covers the
within-run case (see ``examples/`` and the model's
``metrics.response_samples``).
"""

from repro.stats.batchmeans import (
    BatchMeansResult,
    batch_means_ci,
    lag1_autocorrelation,
    recommended_batches,
)

__all__ = [
    "BatchMeansResult",
    "batch_means_ci",
    "lag1_autocorrelation",
    "recommended_batches",
]
