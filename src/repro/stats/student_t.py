"""Student-t quantiles without a hard scipy dependency.

The repo needs exactly one function from scipy: ``stats.t.ppf`` for
confidence-interval half-widths.  scipy ships as an optional extra
(``pip install .[fast]``), so :func:`t_ppf` delegates to it when
present and otherwise computes the quantile from the standard library
alone:

* the closed forms for 1 and 2 degrees of freedom,
* for integer ``df >= 3``, a Cornish–Fisher-style expansion around the
  normal quantile (Hill's approximation, seeded from
  :meth:`statistics.NormalDist.inv_cdf`) refined by Newton iterations
  against the *exact* integer-df CDF (Abramowitz & Stegun 26.7.3/4)
  and the closed-form density — machine precision in a handful of
  steps.

Every caller in this repo passes an integer ``df`` (sample counts
minus one); non-integer ``df`` falls back to the unrefined expansion,
which is accurate to ~1e-6 for ``df >= 3``.
"""

import math
from statistics import NormalDist

try:  # scipy is an optional extra (``pip install .[fast]``)
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - exercised by the no-scipy CI leg
    _scipy_stats = None

_NORMAL = NormalDist()


def t_ppf(q, df):
    """Quantile ``q`` of Student's t with *df* degrees of freedom."""
    if not 0.0 < q < 1.0:
        raise ValueError("q must be in (0, 1), got {!r}".format(q))
    if df < 1:
        raise ValueError("df must be >= 1, got {!r}".format(df))
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(q, df))
    return _t_ppf_stdlib(q, df)


def _t_ppf_stdlib(q, df):
    if q == 0.5:
        return 0.0
    if df == 1:  # Cauchy
        return math.tan(math.pi * (q - 0.5))
    if df == 2:
        u = 2.0 * q - 1.0
        return u * math.sqrt(2.0 / (1.0 - u * u))
    x = _hill_expansion(q, df)
    if df == int(df):
        x = _newton_refine(x, q, int(df))
    return x


def _hill_expansion(q, df):
    """Hill's normal-quantile expansion of the t quantile."""
    z = _NORMAL.inv_cdf(q)
    z2 = z * z
    g1 = z * (z2 + 1.0) / 4.0
    g2 = z * (5.0 * z2 * z2 + 16.0 * z2 + 3.0) / 96.0
    g3 = z * ((3.0 * z2 + 19.0) * z2 * z2 + 17.0 * z2 - 15.0) / 384.0
    g4 = z * (
        (((79.0 * z2 + 776.0) * z2 + 1482.0) * z2 - 1920.0) * z2 - 945.0
    ) / 92160.0
    return z + g1 / df + g2 / df**2 + g3 / df**3 + g4 / df**4


def _t_cdf(x, df):
    """Exact CDF for integer *df* (Abramowitz & Stegun 26.7.3/26.7.4)."""
    if x < 0.0:
        return 1.0 - _t_cdf(-x, df)
    theta = math.atan2(x, math.sqrt(df))
    cos2 = math.cos(theta) ** 2
    if df % 2:
        if df == 1:
            between = 0.0
        else:
            term = math.cos(theta)
            between = term
            numerator, denominator = 2.0, 3.0
            for _ in range(3, df - 1, 2):
                term *= cos2 * numerator / denominator
                between += term
                numerator += 2.0
                denominator += 2.0
        a = (2.0 / math.pi) * (theta + math.sin(theta) * between)
    else:
        term = 1.0
        between = term
        numerator, denominator = 1.0, 2.0
        for _ in range(2, df - 1, 2):
            term *= cos2 * numerator / denominator
            between += term
            numerator += 2.0
            denominator += 2.0
        a = math.sin(theta) * between
    return 0.5 * (1.0 + a)


def _t_pdf(x, df):
    # Log-space keeps large df from overflowing math.gamma.
    return math.exp(
        math.lgamma((df + 1) / 2.0)
        - math.lgamma(df / 2.0)
        - 0.5 * math.log(df * math.pi)
        - (df + 1) / 2.0 * math.log1p(x * x / df)
    )


def _newton_refine(x, q, df, tolerance=1e-12, max_steps=50):
    for _ in range(max_steps):
        step = (_t_cdf(x, df) - q) / _t_pdf(x, df)
        x -= step
        if abs(step) <= tolerance * max(1.0, abs(x)):
            break
    return x
