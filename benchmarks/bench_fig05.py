"""Figure 5 — lock overhead vs locks x processors (small transactions)."""

from conftest import BENCH_NPROS_GRID, bench_scale
from repro.experiments.figures import figure4, figure5


def test_fig5_lock_overhead_small_transactions(run_exhibit):
    spec = bench_scale(
        figure5(), replace_sweeps={"npros": BENCH_NPROS_GRID}
    )
    result = run_exhibit(spec, print_fields=("lock_overhead",))
    for label, points in result.series("lock_overhead").items():
        values = dict(points)
        assert values[5000] > values[100], label


def test_fig5_vs_fig4_small_transactions_more_overhead_when_coarse(run_exhibit):
    """The paper: the initial part of the curves (1 to ~100 locks)
    shows more overhead for small transactions, because they complete
    faster and hence request locks more often."""
    small = bench_scale(
        figure5(), replace_sweeps={"npros": (10,)}, ltot_grid=(10,)
    )
    large = bench_scale(
        figure4(), replace_sweeps={"npros": (10,)}, ltot_grid=(10,)
    )
    small_result = run_exhibit(small, print_fields=("lock_overhead",))
    from repro.experiments.runner import run_experiment

    large_result = run_experiment(large)
    small_overhead = small_result.outcomes[0].mean("lock_overhead")
    large_overhead = large_result.outcomes[0].mean("lock_overhead")
    assert small_overhead > large_overhead
