"""Table 1 — the input parameter set, exercised by one baseline run."""

from conftest import bench_scale
from repro.core.parameters import TABLE_1
from repro.experiments.figures import table1


def test_table1_baseline_run(run_exhibit):
    """One run at the paper's Table 1 defaults; prints every output."""
    spec = bench_scale(table1())
    result = run_exhibit(spec, print_fields=("throughput", "response_time"))
    outcome = result.outcomes[0]
    # Table 1 parameters reached the model unchanged.
    params = outcome.params
    assert params.dbsize == TABLE_1.dbsize
    assert params.ntrans == TABLE_1.ntrans
    assert params.cputime == TABLE_1.cputime
    assert params.iotime == TABLE_1.iotime
    assert params.lcputime == TABLE_1.lcputime
    assert params.liotime == TABLE_1.liotime
    # The baseline completes work and is I/O bound (iotime = 4x cputime).
    assert outcome.mean("totcom") > 0
    assert outcome.mean("io_utilization") > outcome.mean("cpu_utilization")
