"""Figure 10 — granule placement strategies, small transactions."""

from conftest import bench_scale
from repro.experiments.figures import figure10

#: Includes ltot = 25, the mean transaction size for maxtransize = 50.
GRID = (1, 25, 100, 1000, 5000)


def test_fig10_placement_small_transactions(run_exhibit):
    spec = bench_scale(
        figure10(), ltot_grid=GRID, replace_sweeps={"npros": (30,)}
    )
    result = run_exhibit(spec)
    curves = {label: dict(points) for label, points in
              result.series("throughput").items()}
    best = curves["placement=best, npros=30"]
    rand = curves["placement=random, npros=30"]
    worst = curves["placement=worst, npros=30"]
    # The trough sits near the (smaller) mean transaction size and the
    # curve recovers strongly toward entity-level locks: fine
    # granularity is what small random transactions want (§4).
    for curve in (rand, worst):
        trough = min(curve, key=curve.get)
        assert trough in (25, 100), trough
        assert curve[5000] > 1.5 * curve[trough]
    # Best placement barely cares: its throughput dominates both.
    for ltot in GRID:
        assert best[ltot] >= rand[ltot] * 0.95, ltot
