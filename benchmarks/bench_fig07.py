"""Figure 7 — throughput vs locks x lock I/O time."""

import pytest

from conftest import bench_scale
from repro.experiments.figures import figure7


def test_fig7_lock_io_time_effects(run_exhibit):
    spec = bench_scale(figure7())
    result = run_exhibit(spec)
    curves = {label: dict(points) for label, points in
              result.series("throughput").items()}
    zero = curves["liotime=0.0"]
    full = curves["liotime=0.2"]
    half = curves["liotime=0.1"]
    # With the lock table in memory, fine granularity stops hurting:
    # flat extremum from ~100 locks to dbsize.
    assert zero[5000] == pytest.approx(zero[100], rel=0.12)
    # With finite lock I/O, fine granularity collapses.
    assert full[5000] < 0.7 * full[100]
    # Intermediate cost sits between the two at the fine end.
    assert full[5000] <= half[5000] <= zero[5000] * 1.05
    # ...but removing lock I/O does not lift the optimum itself much:
    # coarse granularity remains sufficient (the paper's conclusion).
    assert max(zero.values()) <= max(full.values()) * 1.15
