"""Ablation — probabilistic interval model vs explicit lock table."""

from conftest import bench_scale
from repro.experiments.figures import ablation_conflict_engine


def test_ablation_conflict_engines_agree(run_exhibit):
    spec = bench_scale(ablation_conflict_engine())
    result = run_exhibit(spec)
    curves = {label: dict(points) for label, points in
              result.series("throughput").items()}
    prob = curves["conflict_engine=probabilistic"]
    expl = curves["conflict_engine=explicit"]
    # Same qualitative shape: both convex with the same regime ordering.
    for curve in (prob, expl):
        assert curve[10] > curve[1] * 0.95
        assert curve[10] > curve[5000]
    # Quantitative agreement within a modest band at every point.
    for ltot in prob:
        if prob[ltot] > 0:
            ratio = expl[ltot] / prob[ltot]
            assert 0.6 < ratio < 1.7, (ltot, ratio)
