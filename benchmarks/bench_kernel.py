"""DES kernel micro-benchmark: raw event throughput.

Pins the events-per-second baseline of the simulation kernel — heap
scheduling, callback dispatch and generator resume — independent of
the locking model, so a kernel regression is visible without running
a whole sweep.  The measured rate lands in pytest-benchmark's
``extra_info`` as ``events_per_second``.

The assertion floors are deliberately an order of magnitude below
what the kernel does on a developer laptop (a few million scheduled
timeouts per second, roughly half that through full processes), so
they only trip on a real regression, not on a slow CI runner.
"""

from conftest import smoke_run
from repro.des import Environment, ProfiledEnvironment

#: Concurrently running processes in the process benchmark.
N_PROCESSES = 10
#: Total events per benchmark round (small under REPRO_SMOKE=1).
N_EVENTS = 2_000 if smoke_run() else 100_000

#: Conservative events/second floors (see module docstring).  Locally
#: measured: ~490k ev/s draining a pre-built 100k-entry heap, ~750k
#: ev/s through full processes (~1.2M with pooling), ~800k ev/s for
#: bare callbacks (CPython 3.11, single-core container).
MIN_TIMEOUT_RATE = 25_000.0
MIN_PROCESS_RATE = 60_000.0


def _drain_timeouts(n):
    """Schedule *n* bare timeouts up front, then drain the heap."""
    env = Environment()
    timeout = env.timeout
    for i in range(n):
        timeout(float(i % 97))
    env.run()
    return env.now


def _drain_callbacks(n):
    """Schedule *n* bare callbacks up front, then drain the heap."""
    env = Environment()
    fired = [0]

    def tick():
        fired[0] += 1

    schedule_callback = env.schedule_callback
    for i in range(n):
        schedule_callback(tick, float(i % 97))
    env.run()
    return fired[0]


def _ticker(env, n):
    """A process that waits out *n* unit timeouts."""
    timeout = env.timeout
    for _ in range(n):
        yield timeout(1.0)


def _run_processes(n_processes, events_per_process, pool=False):
    """Run *n_processes* tickers to completion; returns (time, env)."""
    env = Environment(pool=pool)
    for _ in range(n_processes):
        env.process(_ticker(env, events_per_process))
    env.run()
    return env.now, env


def _events_per_second(benchmark, events):
    """Record events/second in extra_info; None if timing disabled."""
    stats = getattr(benchmark, "stats", None)
    if not stats:  # --benchmark-disable (e.g. the CI smoke job)
        return None
    rate = events / stats.stats.mean
    benchmark.extra_info["events_per_second"] = round(rate)
    return rate


def test_kernel_timeout_throughput(benchmark):
    """Heap push/pop + callback dispatch, no generators involved."""
    final_time = benchmark(lambda: _drain_timeouts(N_EVENTS))
    assert final_time == 96.0
    rate = _events_per_second(benchmark, N_EVENTS)
    if rate is not None and not smoke_run():
        assert rate > MIN_TIMEOUT_RATE, "kernel regression: {:.0f} ev/s".format(rate)


def test_kernel_callback_throughput(benchmark):
    """Bare-callback path: heap tuple -> callable, no Event at all."""
    fired = benchmark(lambda: _drain_callbacks(N_EVENTS))
    assert fired == N_EVENTS
    rate = _events_per_second(benchmark, N_EVENTS)
    if rate is not None and not smoke_run():
        assert rate > MIN_TIMEOUT_RATE, "kernel regression: {:.0f} ev/s".format(rate)


def test_kernel_process_throughput(benchmark):
    """Full path: timeout -> callback -> generator resume -> schedule."""
    per_process = N_EVENTS // N_PROCESSES
    final_time = benchmark(
        lambda: _run_processes(N_PROCESSES, per_process)[0]
    )
    assert final_time == float(per_process)
    rate = _events_per_second(benchmark, N_EVENTS)
    if rate is not None and not smoke_run():
        assert rate > MIN_PROCESS_RATE, "kernel regression: {:.0f} ev/s".format(rate)


def test_kernel_pooled_process_throughput(benchmark):
    """The process path with the Timeout/Event free lists enabled."""
    per_process = N_EVENTS // N_PROCESSES

    def run():
        final_time, env = _run_processes(N_PROCESSES, per_process, pool=True)
        return final_time, env.pool_stats()

    final_time, pool_stats = benchmark(run)
    assert final_time == float(per_process)
    # The single-waiter timeouts of the tickers must actually recycle.
    assert pool_stats["timeout_reused"] > 0
    benchmark.extra_info["pool_stats"] = pool_stats
    rate = _events_per_second(benchmark, N_EVENTS)
    if rate is not None and not smoke_run():
        assert rate > MIN_PROCESS_RATE, "kernel regression: {:.0f} ev/s".format(rate)


def test_kernel_self_profile(benchmark):
    """Kernel self-profiling: counters reported via extra_info.

    Runs the ticker workload once on a :class:`ProfiledEnvironment`
    and records what the kernel saw — events dispatched, peak heap
    population, the event-type mix and the kernel's own events/sec —
    so a profile of the run loop ships with every benchmark report.
    The profiled kernel is a subclass; the assertions double as a
    check that its accounting agrees with the workload's shape.
    """
    per_process = N_EVENTS // N_PROCESSES

    def profiled_run():
        env = ProfiledEnvironment()
        for _ in range(N_PROCESSES):
            env.process(_ticker(env, per_process))
        env.run()
        return env

    env = benchmark.pedantic(profiled_run, rounds=1, iterations=1)
    stats = env.kernel_stats()
    # Each ticker contributes per_process timeouts, one Initialize and
    # one terminal Process event.
    assert stats.events_dispatched == N_PROCESSES * (per_process + 2)
    assert stats.event_type_counts["Timeout"] == N_PROCESSES * per_process
    assert stats.event_type_counts["Initialize"] == N_PROCESSES
    assert stats.heap_peak >= N_PROCESSES
    assert stats.heap_length == 0
    if stats.events_per_second:
        benchmark.extra_info["profiled_events_per_second"] = round(
            stats.events_per_second
        )
    benchmark.extra_info["heap_peak"] = stats.heap_peak
    benchmark.extra_info["event_type_counts"] = dict(stats.event_type_counts)
