"""Figure 9 — granule placement strategies, large transactions."""

from conftest import bench_scale
from repro.experiments.figures import figure9

#: Includes ltot = 250, the mean transaction size, where random/worst
#: placement bottoms out.
GRID = (1, 20, 250, 1000, 5000)


def test_fig9_placement_large_transactions(run_exhibit):
    spec = bench_scale(
        figure9(), ltot_grid=GRID, replace_sweeps={"npros": (30,)}
    )
    result = run_exhibit(spec)
    curves = {label: dict(points) for label, points in
              result.series("throughput").items()}
    best = curves["placement=best, npros=30"]
    rand = curves["placement=random, npros=30"]
    worst = curves["placement=worst, npros=30"]
    # Best placement: convex with an interior optimum.
    assert max(best.values()) > best[1]
    assert max(best.values()) > best[5000]
    # Random/worst: fall from ltot=1 to the mean transaction size,
    # then recover toward ltot = dbsize.
    for curve in (rand, worst):
        assert curve[250] < curve[1]
        assert curve[250] < curve[5000]
    # Worst placement never beats random placement materially.
    for ltot in GRID:
        assert worst[ltot] <= rand[ltot] * 1.1, ltot
    # All three coincide at ltot = 1 (single lock) and at the finest
    # granularity (entity locks) they converge again.
    assert worst[1] == best[1]
    assert abs(worst[5000] - best[5000]) / best[5000] < 0.25
