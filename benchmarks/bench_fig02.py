"""Figure 2 — throughput & response time vs locks x processors."""

from conftest import BENCH_NPROS_GRID, bench_scale
from repro.experiments.figures import figure2


def test_fig2_throughput_and_response(run_exhibit):
    spec = bench_scale(
        figure2(), replace_sweeps={"npros": BENCH_NPROS_GRID}
    )
    result = run_exhibit(spec)
    curves = result.series("throughput")
    # More processors → more throughput, at every lock count.
    for (x2, y2), (x30, y30) in zip(curves["npros=2"], curves["npros=30"]):
        assert x2 == x30
        assert y30 > y2
    # Convexity: optimum strictly between the extremes, below 200 locks.
    for label, points in curves.items():
        values = dict(points)
        best_x = max(values, key=values.get)
        assert values[best_x] >= values[1]
        assert values[best_x] > values[5000]
        assert best_x <= 200, "{} optimum at {}".format(label, best_x)
    # Response time decreases with processors at the optimum region.
    responses = result.series("response_time")
    mid = lambda curve: dict(curve)[100]  # noqa: E731
    assert mid(responses["npros=30"]) < mid(responses["npros=2"])
