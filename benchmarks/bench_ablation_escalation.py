"""Ablation — lock escalation over a file/block hierarchy."""

from conftest import bench_scale
from repro.experiments.figures import ablation_escalation


def test_ablation_escalation_trims_fine_granularity_overhead(run_exhibit):
    spec = bench_scale(ablation_escalation(), ltot_grid=(100, 1000, 5000))
    result = run_exhibit(spec, print_fields=("throughput", "lock_overhead"))
    curves = {label: dict(points) for label, points in
              result.series("lock_overhead").items()}
    plain = curves["escalation_threshold=0"]
    escalated = curves["escalation_threshold=10"]
    # Escalation reduces the lock-processing cost at fine granularity.
    for ltot in (1000, 5000):
        assert escalated[ltot] < plain[ltot], ltot
    # And it actually fires.
    fired = dict(
        result.series("lock_escalations")["escalation_threshold=10"]
    )
    assert any(v > 0 for v in fired.values())
    # Throughput at the finest granularity does not get worse.
    throughput = {label: dict(points) for label, points in
                  result.series("throughput").items()}
    assert (
        throughput["escalation_threshold=10"][5000]
        >= throughput["escalation_threshold=0"][5000] * 0.95
    )
