"""Figure 3 — useful I/O and useful CPU time vs locks x processors."""

from conftest import BENCH_NPROS_GRID, bench_scale
from repro.experiments.figures import figure3


def test_fig3_useful_times(run_exhibit):
    spec = bench_scale(
        figure3(), replace_sweeps={"npros": BENCH_NPROS_GRID}
    )
    result = run_exhibit(spec)
    for field in ("usefulios", "usefulcpus"):
        curves = result.series(field)
        for label, points in curves.items():
            values = dict(points)
            # Convex: the optimum-region value beats both extremes
            # (the serial regime and the lock-swamped fine regime).
            assert values[10] >= values[1] * 0.95, (field, label)
            assert values[10] > values[5000], (field, label)
    # At the finest granularity, smaller systems lose a larger share
    # of their capacity to lock work (Fig 4 commentary).
    fine_io = {
        label: dict(points)[5000]
        for label, points in result.series("usefulios").items()
    }
    assert fine_io["npros=2"] < fine_io["npros=30"]
