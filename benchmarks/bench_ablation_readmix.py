"""Ablation — read/write mix (shared-lock extension)."""

from conftest import bench_scale
from repro.experiments.figures import ablation_read_mix


def test_ablation_read_mix_softens_contention(run_exhibit):
    spec = bench_scale(ablation_read_mix(), ltot_grid=(1, 100, 5000))
    result = run_exhibit(spec)
    throughput = {label: dict(points) for label, points in
                  result.series("throughput").items()}
    denials = {label: dict(points) for label, points in
               result.series("denial_rate").items()}
    all_writers = throughput["write_fraction=1.0"]
    mostly_readers = throughput["write_fraction=0.1"]
    # Readers share: throughput no worse, denials strictly lower at
    # the contended coarse end.
    for ltot in (1, 100):
        assert mostly_readers[ltot] >= all_writers[ltot] * 0.98, ltot
    assert (
        denials["write_fraction=0.1"][1]
        < denials["write_fraction=1.0"][1]
    )
    # Lock overhead is mode-independent: entity-level locking still
    # pays its processing cost even when nothing conflicts.
    assert mostly_readers[5000] < max(mostly_readers.values())
