"""Ablation — sub-transaction queueing discipline (FCFS vs SJF)."""

from conftest import bench_scale
from repro.experiments.figures import ablation_discipline


def test_ablation_discipline_marginal_effect(run_exhibit):
    spec = bench_scale(ablation_discipline(), ltot_grid=(1, 100, 5000))
    result = run_exhibit(spec)
    curves = {label: dict(points) for label, points in
              result.series("throughput").items()}
    fcfs = curves["discipline=fcfs"]
    sjf = curves["discipline=sjf"]
    # Ref [3] of the paper: sub-transaction-level scheduling has only
    # a marginal effect on the locking-granularity picture — the two
    # disciplines' curves track each other closely and share shape.
    for ltot in fcfs:
        if fcfs[ltot] > 0:
            ratio = sjf[ltot] / fcfs[ltot]
            assert 0.7 < ratio < 1.4, (ltot, ratio)
    assert (fcfs[100] > fcfs[5000]) == (sjf[100] > sjf[5000])
