"""Figure 8 — Figure 2's sweep under random partitioning."""

from conftest import BENCH_NPROS_GRID, bench_scale
from repro.experiments.figures import figure2, figure8
from repro.experiments.runner import run_experiment


def test_fig8_random_partitioning(run_exhibit):
    spec = bench_scale(
        figure8(), replace_sweeps={"npros": BENCH_NPROS_GRID}
    )
    result = run_exhibit(spec)
    curves = result.series("throughput")
    # Processor ordering is unchanged by the partitioning method.
    for (x2, y2), (x30, y30) in zip(curves["npros=2"], curves["npros=30"]):
        assert x2 == x30
        assert y30 > y2


def test_fig8_vs_fig2_horizontal_partitioning_wins(run_exhibit):
    random_spec = bench_scale(
        figure8(), replace_sweeps={"npros": (10,)}, ltot_grid=(10, 100)
    )
    horizontal_spec = bench_scale(
        figure2(), replace_sweeps={"npros": (10,)}, ltot_grid=(10, 100)
    )
    random_result = run_exhibit(random_spec)
    horizontal_result = run_experiment(horizontal_spec)
    random_curve = dict(random_result.series("throughput")["npros=10"])
    horizontal_curve = dict(
        horizontal_result.series("throughput")["npros=10"]
    )
    for ltot in (10, 100):
        assert horizontal_curve[ltot] > random_curve[ltot]
