"""Figure 4 — lock overhead vs locks x processors (large transactions)."""

from conftest import BENCH_NPROS_GRID, bench_scale
from repro.experiments.figures import figure4


def test_fig4_lock_overhead_large_transactions(run_exhibit):
    spec = bench_scale(
        figure4(), replace_sweeps={"npros": BENCH_NPROS_GRID}
    )
    result = run_exhibit(spec, print_fields=("lock_overhead",))
    for label, points in result.series("lock_overhead").items():
        values = dict(points)
        # Overhead rises steeply once past ~200 locks.
        assert values[1000] > values[100], label
        assert values[5000] > 2 * values[100], label
    # I/O dominates the lock cost (liotime = 20x lcputime).
    lockios = result.series("lockios")
    lockcpus = result.series("lockcpus")
    for label in lockios:
        io_fine = dict(lockios[label])[5000]
        cpu_fine = dict(lockcpus[label])[5000]
        assert io_fine > cpu_fine, label
