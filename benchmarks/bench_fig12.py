"""Figure 12 — heavy load (ntrans = 200) x placement strategies."""

from conftest import bench_scale, full_run
from repro.experiments.figures import figure12

GRID = (1, 100, 5000)
#: ntrans = 200 transactions arrive one time unit apart, so the
#: horizon must comfortably exceed 200; use a longer bench tmax.
HEAVY_TMAX = 500.0


def test_fig12_heavy_load_prefers_coarse(run_exhibit):
    spec = bench_scale(figure12(), tmax=HEAVY_TMAX, ltot_grid=GRID)
    if not full_run():
        # Placement sweep x 3 points is already 9 heavy runs; keep the
        # benchmark focused on best placement plus one comparison.
        spec = spec.scaled(replace_sweeps={"placement": ("best", "random")})
    result = run_exhibit(spec)
    curves = {label: dict(points) for label, points in
              result.series("throughput").items()}
    for label, curve in curves.items():
        # The paper's key §3.7 observation: with many transactions,
        # entity-level locking is *worse* than coarse locking — the
        # lock overhead grows with ntrans x ltot while most of the
        # added requests are denied.
        assert curve[5000] < curve[1], label
        assert curve[5000] < curve[100], label
