"""Ablation — transaction admission policies under heavy load (§3.7)."""

from conftest import bench_scale, full_run
from repro.experiments.figures import ablation_txn_scheduling

HEAVY_TMAX = 500.0


def test_ablation_adaptive_admission_controls_overhead(run_exhibit):
    spec = bench_scale(
        ablation_txn_scheduling(), tmax=HEAVY_TMAX, ltot_grid=(1, 5000)
    )
    if not full_run():
        spec = spec.scaled(
            replace_sweeps={
                "txn_policy": ("fcfs", "adaptive"),
                "ltot": (1, 5000),
            }
        )
    result = run_exhibit(spec)
    curves = {label: dict(points) for label, points in
              result.series("throughput").items()}
    fcfs = curves["txn_policy=fcfs"]
    adaptive = curves["txn_policy=adaptive"]
    # The paper's remedy (refs [3, 4]): adaptive transaction-level
    # scheduling recovers the fine-granularity loss by capping the
    # request rate.
    assert adaptive[5000] > fcfs[5000]
    # Adaptive also lowers the denial rate at fine granularity.
    denials = {label: dict(points) for label, points in
               result.series("denial_rate").items()}
    assert (
        denials["txn_policy=adaptive"][5000]
        < denials["txn_policy=fcfs"][5000]
    )
