"""One-shot performance suite with a committed-baseline regression gate.

Measures the two layers the reproduction's wall time depends on and
writes one JSON artifact per layer:

``BENCH_kernel.json``
    Raw DES kernel throughput (events/second) for four workloads —
    timeout drain, bare callbacks, the process path, and the process
    path with Timeout/Event pooling — measured head-to-head under
    every registered scheduler backend (``heap`` and ``calendar``),
    plus the kernel free-list counters of the pooled run and a
    ``metrics_overhead`` block comparing the simulation path with and
    without the live metrics registry attached (gated at 5% by
    ``--check``).  The process path uses the bare-delay tick style
    (``yield 1.0``), the kernel's fastest dispatch path.
``BENCH_sweep.json``
    A small locking-granularity sweep through the global work queue:
    per-cell wall times, queue wait, worker occupancy and total
    elapsed time — plus an ``accelerator`` block comparing the same
    single-curve sweep with and without ``accelerator="analytic"``
    (cells simulated vs pruned, measured wall-clock saved).

``--check`` compares the kernel events/second numbers against the
committed baseline under ``benchmarks/baselines/`` (one file per
mode: smoke and full) and exits non-zero when any workload regresses
by more than ``REPRO_BENCH_TOLERANCE`` (default 0.30, i.e. 30%).
Baselines are committed deliberately low (roughly half of a measured
run) so the gate trips on real regressions, not on CI runner noise.

Usage::

    PYTHONPATH=src python benchmarks/bench_suite.py [--out DIR] [--check]

Set ``REPRO_SMOKE=1`` for the CI-sized run (fewer events, a smaller
sweep, fewer repeats).
"""

import argparse
import json
import os
import sys
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.parameters import SimulationParameters  # noqa: E402
from repro.des import Environment, available_schedulers  # noqa: E402
from repro.experiments.config import ExperimentSpec  # noqa: E402
from repro.experiments.runner import run_experiment, run_experiments  # noqa: E402

#: Directory holding the committed baseline files.
BASELINE_DIR = Path(__file__).resolve().parent / "baselines"


def _smoke():
    return os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def _tolerance():
    return float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.30"))


# -- kernel workloads ----------------------------------------------------


def _timeout_drain(n, scheduler="heap"):
    env = Environment(scheduler=scheduler)
    timeout = env.timeout
    for i in range(n):
        timeout(float(i % 97))
    env.run()
    return n


def _callback_drain(n, scheduler="heap"):
    env = Environment(scheduler=scheduler)
    fired = [0]

    def tick():
        fired[0] += 1

    schedule_callback = env.schedule_callback
    for i in range(n):
        schedule_callback(tick, float(i % 97))
    env.run()
    return fired[0]


def _ticker(env, n):
    # Bare-delay sleeps ride the kernel's tick fast path: no Timeout
    # object, no callback list — the process itself is the heap entry.
    for _ in range(n):
        yield 1.0


def _process_path(n, pool, scheduler="heap"):
    env = Environment(pool=pool, scheduler=scheduler)
    n_processes = 10
    for _ in range(n_processes):
        env.process(_ticker(env, n // n_processes))
    env.run()
    return env


def _best_rate(workload, events, repeats):
    """Best-of-*repeats* events/second for one kernel workload."""
    best = 0.0
    result = None
    for _ in range(repeats):
        start = perf_counter()
        result = workload(events)
        elapsed = perf_counter() - start
        best = max(best, events / elapsed)
    return best, result


def bench_kernel():
    """Kernel throughput measurements; returns the BENCH_kernel dict.

    Every workload runs under every registered scheduler backend so
    the artifact records a true head-to-head comparison; the top-level
    ``events_per_second`` block stays the default (heap) numbers for
    baseline-file compatibility.
    """
    events = 20_000 if _smoke() else 200_000
    repeats = 2 if _smoke() else 3
    schedulers = {}
    pool_stats = None
    for sched in available_schedulers():
        rates = {}
        rates["timeout_drain"], _ = _best_rate(
            lambda n: _timeout_drain(n, sched), events, repeats
        )
        rates["callbacks"], _ = _best_rate(
            lambda n: _callback_drain(n, sched), events, repeats
        )
        rates["process"], _ = _best_rate(
            lambda n: _process_path(n, pool=False, scheduler=sched),
            events, repeats,
        )
        rates["process_pooled"], env = _best_rate(
            lambda n: _process_path(n, pool=True, scheduler=sched),
            events, repeats,
        )
        schedulers[sched] = {k: round(v) for k, v in rates.items()}
        if sched == "heap":
            pool_stats = env.pool_stats()
    return {
        "mode": "smoke" if _smoke() else "full",
        "events_per_workload": events,
        "events_per_second": schedulers["heap"],
        "schedulers": schedulers,
        "pool_stats": pool_stats,
        "metrics_overhead": bench_metrics_overhead(),
    }


def _timed_simulation(params, registry):
    """Best wall time of one simulation (with/without instruments)."""
    from repro.core.model import LockingGranularityModel

    start = perf_counter()
    result = LockingGranularityModel(
        params, metrics_registry=registry
    ).run()
    return perf_counter() - start, result


def bench_metrics_overhead():
    """Head-to-head cost of live metrics on the simulation path.

    Interleaves instrumented and plain runs of the same configuration
    (so thermal / scheduling drift hits both sides equally), keeps the
    best time of each, and reports the relative overhead.  The gate in
    :func:`check_kernel` fails when instrumentation costs more than
    ``REPRO_METRICS_OVERHEAD_MAX`` (default 5%).
    """
    from repro.obs.metrics import MetricsRegistry

    # The horizon must be long enough that per-run timing noise stays
    # well under the 5% gate (sub-50ms runs measure scheduler jitter,
    # not instrumentation cost).
    params = SimulationParameters(
        dbsize=500,
        ltot=20,
        ntrans=5,
        maxtransize=50,
        npros=4,
        tmax=500.0 if _smoke() else 1500.0,
        seed=7,
    )
    repeats = 8 if _smoke() else 10
    # One untimed warm-up per side, then alternate which side runs
    # first each repeat: whichever run comes second in a pair benefits
    # from warm caches, so a fixed order would bias the comparison by
    # more than the overhead being measured.
    _timed_simulation(params, None)
    _timed_simulation(params, MetricsRegistry())
    best_plain = best_instrumented = float("inf")
    plain_result = instrumented_result = None
    for i in range(repeats):
        sides = ["plain", "instrumented"]
        if i % 2:
            sides.reverse()
        for side in sides:
            if side == "plain":
                elapsed, plain_result = _timed_simulation(params, None)
                best_plain = min(best_plain, elapsed)
            else:
                elapsed, instrumented_result = _timed_simulation(
                    params, MetricsRegistry()
                )
                best_instrumented = min(best_instrumented, elapsed)
    overhead = (best_instrumented - best_plain) / best_plain
    return {
        "plain_seconds": round(best_plain, 6),
        "instrumented_seconds": round(best_instrumented, 6),
        "overhead_fraction": round(overhead, 6),
        # The instrumented run must not change the physics.
        "results_identical": (
            plain_result.as_dict() == instrumented_result.as_dict()
        ),
    }


# -- sweep workload ------------------------------------------------------


def _sweep_spec():
    base = SimulationParameters(
        dbsize=500,
        ntrans=4,
        maxtransize=30,
        npros=2,
        tmax=40.0 if _smoke() else 120.0,
        seed=11,
    )
    return ExperimentSpec(
        key="bench-sweep",
        title="bench sweep",
        base=base,
        sweeps={"ltot": (1, 20, 100), "npros": (1, 2)},
        series_fields=("npros",),
        y_fields=("throughput",),
    )


def bench_sweep():
    """Sweep harness measurement; returns the BENCH_sweep dict."""
    spec = _sweep_spec()
    cells = []

    def on_cell(done, total, info):
        if info["seconds"] is not None:
            cells.append(
                {"label": info["label"], "seconds": round(info["seconds"], 4)}
            )

    jobs = min(2, os.cpu_count() or 1)
    started = perf_counter()
    # cache=False: this must time simulations, never cache reads.
    result = run_experiments(
        [spec],
        replications=1 if _smoke() else 2,
        jobs=jobs,
        cache=False,
        cell_progress=on_cell,
    )[0]
    elapsed = perf_counter() - started
    stats = result.stats
    seconds = [cell["seconds"] for cell in cells]
    return {
        "mode": "smoke" if _smoke() else "full",
        "cells": stats.cells,
        "workers": stats.workers,
        "occupancy": round(stats.occupancy, 4),
        "queue_wait_seconds": round(stats.queue_wait_seconds, 4),
        "elapsed_seconds": round(elapsed, 4),
        "cell_seconds_max": max(seconds) if seconds else 0.0,
        "cell_seconds_total": round(sum(seconds), 4) if seconds else 0.0,
        "cell_wall_times": cells,
        "accelerator": bench_accelerated_sweep(),
    }


def _accelerator_spec():
    """One long granularity curve — enough interior points to prune."""
    base = SimulationParameters(
        dbsize=500,
        ntrans=6,
        maxtransize=50,
        npros=4,
        tmax=60.0 if _smoke() else 150.0,
        seed=11,
    )
    return ExperimentSpec(
        key="bench-accel",
        title="bench accelerated sweep",
        base=base,
        sweeps={"ltot": (2, 5, 10, 20, 50, 100, 200, 500)},
        y_fields=("throughput",),
    )


def bench_accelerated_sweep():
    """The same curve with and without the analytic accelerator.

    Both runs are uncached and inline, so the elapsed delta is the
    simulation work the pruned cells would have cost.
    """
    spec = _accelerator_spec()

    started = perf_counter()
    plain = run_experiment(spec, cache=False)
    plain_elapsed = perf_counter() - started

    started = perf_counter()
    accelerated = run_experiment(spec, cache=False, accelerator="analytic")
    accel_elapsed = perf_counter() - started

    stats = accelerated.stats
    return {
        "cells": stats.cells,
        "cells_simulated": stats.runs,
        "cells_pruned": stats.analytic_cells,
        "pruned_fraction": round(stats.pruned_fraction, 4),
        "plain_elapsed_seconds": round(plain_elapsed, 4),
        "accelerated_elapsed_seconds": round(accel_elapsed, 4),
        "wall_clock_saved_seconds": round(plain_elapsed - accel_elapsed, 4),
        "plain_throughput_optimum": max(
            outcome.mean("throughput") for outcome in plain.outcomes
        ),
        "accelerated_throughput_optimum": max(
            outcome.mean("throughput") for outcome in accelerated.outcomes
        ),
    }


# -- baseline gate -------------------------------------------------------


def check_kernel(current):
    """Compare events/second against the committed baseline.

    Returns a list of human-readable failure strings (empty = pass).
    A missing baseline file is reported but never fails the run, so
    the suite stays usable on machines without a committed baseline
    for their mode.
    """
    baseline_path = BASELINE_DIR / "kernel-{}.json".format(current["mode"])
    if not baseline_path.exists():
        print("no committed baseline at {}; gate skipped".format(baseline_path))
        return []
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    tolerance = _tolerance()
    failures = []
    schedulers = current.get("schedulers") or {
        "heap": current["events_per_second"]
    }
    for sched, rates in sorted(schedulers.items()):
        for name, floor in baseline["events_per_second"].items():
            measured = rates.get(name)
            if measured is None:
                failures.append(
                    "workload {!r} missing from {} run".format(name, sched)
                )
                continue
            allowed = floor * (1.0 - tolerance)
            if measured < allowed:
                failures.append(
                    "{}/{}: {:.0f} ev/s < {:.0f} "
                    "(baseline {:.0f} - {:.0%})".format(
                        sched, name, measured, allowed, floor, tolerance
                    )
                )
    # The calendar backend exists to beat the heap on drain-heavy
    # workloads; hold it to that (within the same noise tolerance).
    if "calendar" in schedulers and "heap" in schedulers:
        heap_drain = schedulers["heap"]["timeout_drain"]
        calendar_drain = schedulers["calendar"]["timeout_drain"]
        if calendar_drain < heap_drain * (1.0 - tolerance):
            failures.append(
                "calendar timeout_drain {:.0f} ev/s no longer improves "
                "on heap {:.0f} ev/s".format(calendar_drain, heap_drain)
            )
    failures.extend(check_metrics_overhead(current.get("metrics_overhead")))
    return failures


def check_metrics_overhead(overhead):
    """Gate the live-metrics cost on the simulation path.

    Instrumentation must stay cheap enough to leave on in sweeps:
    more than ``REPRO_METRICS_OVERHEAD_MAX`` (default 0.05, i.e. 5%)
    relative slowdown — or any result divergence at all — fails.
    """
    if overhead is None:
        return []
    limit = float(os.environ.get("REPRO_METRICS_OVERHEAD_MAX", "0.05"))
    failures = []
    if not overhead["results_identical"]:
        failures.append(
            "metrics instrumentation changed simulation results "
            "(must be bit-identical)"
        )
    if overhead["overhead_fraction"] > limit:
        failures.append(
            "metrics overhead {:.1%} exceeds the {:.1%} budget "
            "({}s plain vs {}s instrumented)".format(
                overhead["overhead_fraction"], limit,
                overhead["plain_seconds"], overhead["instrumented_seconds"],
            )
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=".", help="directory for the BENCH_*.json artifacts"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="fail on events/sec regression vs the committed baseline",
    )
    args = parser.parse_args(argv)
    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)

    kernel = bench_kernel()
    with open(out_dir / "BENCH_kernel.json", "w") as handle:
        json.dump(kernel, handle, indent=1, sort_keys=True)
    for sched, rates in sorted(kernel["schedulers"].items()):
        for name, rate in sorted(rates.items()):
            print(
                "kernel {:9s} {:16s} {:>10,} ev/s".format(sched, name, rate)
            )
    overhead = kernel["metrics_overhead"]
    print(
        "kernel metrics overhead {:+.1%} ({}s plain, {}s instrumented, "
        "results identical: {})".format(
            overhead["overhead_fraction"], overhead["plain_seconds"],
            overhead["instrumented_seconds"], overhead["results_identical"],
        )
    )

    sweep = bench_sweep()
    with open(out_dir / "BENCH_sweep.json", "w") as handle:
        json.dump(sweep, handle, indent=1, sort_keys=True)
    print(
        "sweep  {} cells on {} workers: occupancy {:.0%}, "
        "queue wait {:.2f}s, {:.2f}s wall".format(
            sweep["cells"],
            sweep["workers"],
            sweep["occupancy"],
            sweep["queue_wait_seconds"],
            sweep["elapsed_seconds"],
        )
    )
    print("wrote {}/BENCH_kernel.json and BENCH_sweep.json".format(out_dir))

    if args.check:
        failures = check_kernel(kernel)
        if failures:
            for failure in failures:
                print("PERF REGRESSION: {}".format(failure), file=sys.stderr)
            return 1
        print("perf gate passed ({:.0%} tolerance)".format(_tolerance()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
