"""Figure 11 — placement strategies under the 80/20 size mix."""

from conftest import bench_scale
from repro.experiments.figures import figure9, figure10, figure11
from repro.experiments.runner import run_experiment

GRID = (1, 100, 5000)


def test_fig11_mixed_sizes_between_extremes(run_exhibit):
    mixed_spec = bench_scale(figure11(), ltot_grid=GRID)
    result = run_exhibit(mixed_spec)
    mixed = {label: dict(points) for label, points in
             result.series("throughput").items()}

    small_spec = bench_scale(
        figure10(), ltot_grid=(5000,), replace_sweeps={"npros": (30,)}
    )
    large_spec = bench_scale(
        figure9(), ltot_grid=(5000,), replace_sweeps={"npros": (30,)}
    )
    small = run_experiment(small_spec)
    large = run_experiment(large_spec)

    def fine_point(result_, placement):
        label = "placement={}, npros=30".format(placement)
        return dict(result_.series("throughput")[label])[5000]

    for placement in ("best", "random", "worst"):
        y_small = fine_point(small, placement)
        y_large = fine_point(large, placement)
        y_mixed = mixed["placement={}".format(placement)][5000]
        # The 80/20 mix falls between the all-small and all-large
        # extremes, dragged well below the small-only throughput.
        assert y_large < y_mixed < y_small, placement
        assert y_mixed < 0.75 * y_small, placement
