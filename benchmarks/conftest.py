"""Shared benchmark infrastructure.

Each benchmark file regenerates one of the paper's exhibits (Table 1,
Figures 2–12) or an ablation, on a reduced grid so the whole suite
stays in the minutes range.  Set ``REPRO_BENCH_FULL=1`` to run the
paper's full grids and a longer horizon (slow — tens of minutes).

Every benchmark prints the exhibit's series table (visible with
``pytest -s`` or in pytest-benchmark's captured output) and asserts the
paper's qualitative shape, so a green benchmark run doubles as a
reproduction check.

Set ``REPRO_SMOKE=1`` for a CI-grade smoke pass: every sweep shrinks
to one cheap configuration on a short horizon, the sweep still runs
end-to-end (imports, spec builders, runner, caching), and the shape
assertions — meaningless on a one-point grid — are skipped.  Combine
with ``--benchmark-disable`` so pytest-benchmark adds no timing
rounds.

Sweeps go through :func:`repro.experiments.runner.run_experiment`, so
they use the content-addressed result cache under ``results/.cache``;
export ``REPRO_CACHE=0`` to time cold runs.
"""

import os

import pytest

#: Reduced lock grid: the regimes that define every curve's shape.
BENCH_LTOT_GRID = (1, 10, 100, 1000, 5000)
#: Reduced processor grid.
BENCH_NPROS_GRID = (2, 10, 30)
#: Short horizon for benchmark runs.
BENCH_TMAX = 150.0
#: Horizon of the REPRO_SMOKE=1 single-config pass.
SMOKE_TMAX = 60.0


def full_run():
    """True when the full paper grids were requested via env var."""
    return os.environ.get("REPRO_BENCH_FULL", "") not in ("", "0")


def smoke_run():
    """True when ``REPRO_SMOKE=1`` asks for the one-config CI pass."""
    return os.environ.get("REPRO_SMOKE", "") not in ("", "0")


def bench_scale(spec, tmax=BENCH_TMAX, ltot_grid=BENCH_LTOT_GRID, **changes):
    """Scale *spec* for benchmarking (no-op under REPRO_BENCH_FULL).

    Under ``REPRO_SMOKE=1`` the spec further collapses to the first
    value of every sweep — one cheap configuration that still drives
    the whole entry point.
    """
    if full_run():
        return spec
    spec = spec.scaled(tmax=tmax, ltot_grid=ltot_grid, **changes)
    if smoke_run():
        spec = spec.scaled(
            tmax=SMOKE_TMAX,
            replace_sweeps={
                name: values[:1] for name, values in spec.sweeps.items()
            },
        )
    return spec


@pytest.fixture
def run_exhibit(benchmark):
    """Benchmark an exhibit sweep once and return its result.

    Usage::

        def test_fig7(run_exhibit):
            result = run_exhibit(spec)
            ... assertions on result.series() ...

    Under ``REPRO_SMOKE=1`` the sweep still executes, but the fixture
    then skips the test before the caller's shape assertions run —
    those need the full benchmark grid.
    """
    from repro.experiments.runner import run_experiment

    def runner(spec, print_fields=None):
        result = benchmark.pedantic(
            lambda: run_experiment(spec), rounds=1, iterations=1
        )
        from repro.experiments.report import format_series_table

        for field in print_fields or spec.y_fields:
            print()
            print(format_series_table(result, field))
        if smoke_run():
            pytest.skip(
                "REPRO_SMOKE=1: sweep entry point exercised; shape "
                "assertions need the full benchmark grid"
            )
        return result

    return runner
