"""Scheduler head-to-head micro-benchmark: heap vs calendar queue.

Times every registered scheduler backend on three kernel workloads
and prints a side-by-side events/second table:

``timeout_heavy``
    A pre-built backlog of bare timeouts (97 distinct timestamps)
    drained in one run — the workload the calendar queue's
    sort-once-per-bucket drain is built for.
``callback_heavy``
    The same backlog shape through ``schedule_callback`` — no Event
    objects, pure dispatch overhead.
``mixed``
    Concurrent processes sleeping via bare-delay ticks and via
    ``env.timeout``, plus a self-rescheduling callback chain — the
    shape of a real simulation run.

``--conflict`` appends a second table: the scalar
:class:`~repro.core.conflict.ProbabilisticConflicts` engine against
:class:`~repro.core.conflict.VectorizedConflicts` on a release/request
churn loop at growing active-set sizes, locating the crossover where
the numpy scan starts to win (the default ``REPRO_CONFLICT_CUTOFF``
is pinned to that measured crossover).

Usage::

    PYTHONPATH=src python benchmarks/bench_sched.py [--conflict]
        [--events N] [--repeats N] [--json PATH]

Set ``REPRO_SMOKE=1`` for a CI-sized run.
"""

import argparse
import json
import os
import random
import sys
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.conflict import (  # noqa: E402
    ProbabilisticConflicts,
    VectorizedConflicts,
)
from repro.des import Environment, available_schedulers  # noqa: E402


def _smoke():
    return os.environ.get("REPRO_SMOKE", "") not in ("", "0")


# -- scheduler workloads -------------------------------------------------


def _timeout_heavy(n, scheduler):
    env = Environment(scheduler=scheduler)
    timeout = env.timeout
    for i in range(n):
        timeout(float(i % 97))
    env.run()
    return n


def _callback_heavy(n, scheduler):
    env = Environment(scheduler=scheduler)
    fired = [0]

    def tick():
        fired[0] += 1

    schedule_callback = env.schedule_callback
    for i in range(n):
        schedule_callback(tick, float(i % 97))
    env.run()
    return fired[0]


def _mixed(n, scheduler):
    """Ticks + Timeouts + a callback chain running concurrently."""
    env = Environment(pool=True, scheduler=scheduler)
    third = n // 3

    def ticks(m):
        for _ in range(m):
            yield 1.0

    def waits(m):
        timeout = env.timeout
        for _ in range(m):
            yield timeout(1.5)

    fired = [0]

    def chain():
        fired[0] += 1
        if fired[0] < third:
            env.schedule_callback(chain, 0.7)

    for _ in range(8):
        env.process(ticks(third // 8))
    for _ in range(8):
        env.process(waits(third // 8))
    env.schedule_callback(chain, 0.7)
    env.run()
    return n


WORKLOADS = (
    ("timeout_heavy", _timeout_heavy),
    ("callback_heavy", _callback_heavy),
    ("mixed", _mixed),
)


def _best_rate(workload, events, scheduler, repeats):
    best = 0.0
    for _ in range(repeats):
        start = perf_counter()
        workload(events, scheduler)
        best = max(best, events / (perf_counter() - start))
    return best


def _scheduler_order():
    """Registered backends with the default (heap) first as baseline."""
    return sorted(available_schedulers(), key=lambda s: s != "heap")


def bench_schedulers(events, repeats):
    """events/second per (workload, scheduler); returns the table dict."""
    schedulers = _scheduler_order()
    table = {}
    for name, workload in WORKLOADS:
        table[name] = {
            sched: round(_best_rate(workload, events, sched, repeats))
            for sched in schedulers
        }
    return table


# -- conflict-engine crossover -------------------------------------------


class _Txn:
    __slots__ = ("tid", "lock_count", "is_writer")

    def __init__(self, tid, lock_count, is_writer=True):
        self.tid = tid
        self.lock_count = lock_count
        self.is_writer = is_writer


def _churn(engine_factory, k, iters, locks=5):
    """µs per release+request cycle at a steady *k* active txns.

    ``ltot`` is huge so requests essentially always grant: the loop
    measures the bookkeeping cost, not the blocking behaviour (which
    the parity tests pin separately).
    """
    engine = engine_factory(10**9, random.Random(1))
    pool = [_Txn(i, locks) for i in range(k + iters + 1)]
    live = []
    for i in range(k):
        assert engine.request(pool[i]) is None
        live.append(pool[i])
    rng = random.Random(2)
    nxt = k
    start = perf_counter()
    for _ in range(iters):
        j = rng.randrange(k)
        engine.release(live[j])
        txn = pool[nxt]
        nxt += 1
        if engine.request(txn) is None:
            live[j] = txn
        else:  # pragma: no cover - ltot is huge, requests always grant
            engine.request(live[j])
    return (perf_counter() - start) / iters * 1e6


def bench_conflict(iters):
    """Scalar vs vectorized churn cost per active-set size."""
    sizes = (8, 32, 64, 128, 256) if _smoke() else (
        8, 32, 64, 96, 128, 256, 512, 1024
    )
    rows = []
    for k in sizes:
        scalar = _churn(ProbabilisticConflicts, k, iters)
        vector = _churn(
            lambda ltot, rng: VectorizedConflicts(ltot, rng), k, iters
        )
        rows.append(
            {
                "actives": k,
                "scalar_us_per_cycle": round(scalar, 2),
                "vectorized_us_per_cycle": round(vector, 2),
                "speedup": round(scalar / vector, 2),
            }
        )
    return rows


# -- CLI -----------------------------------------------------------------


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--events", type=int,
        default=20_000 if _smoke() else 200_000,
        help="events per scheduler workload",
    )
    parser.add_argument(
        "--repeats", type=int, default=2 if _smoke() else 3,
        help="best-of repeats per measurement",
    )
    parser.add_argument(
        "--conflict", action="store_true",
        help="also benchmark the scalar vs vectorized conflict engines",
    )
    parser.add_argument(
        "--json", metavar="PATH", help="write the results as JSON"
    )
    args = parser.parse_args(argv)

    schedulers = _scheduler_order()
    table = bench_schedulers(args.events, args.repeats)
    header = "{:16s}".format("workload") + "".join(
        "{:>14s}".format(s) for s in schedulers
    )
    print(header)
    for name, _ in WORKLOADS:
        row = "{:16s}".format(name)
        for sched in schedulers:
            row += "{:>14,}".format(table[name][sched])
        baseline = table[name][schedulers[0]]
        for sched in schedulers[1:]:
            row += "  ({:+.0%} {})".format(
                table[name][sched] / baseline - 1.0, sched
            )
        print(row)

    results = {
        "events_per_workload": args.events,
        "events_per_second": table,
    }

    if args.conflict:
        iters = 5_000 if _smoke() else 20_000
        rows = bench_conflict(iters)
        print()
        print(
            "{:>8s} {:>14s} {:>16s} {:>9s}".format(
                "actives", "scalar µs/cyc", "vectorized µs/cyc", "speedup"
            )
        )
        for row in rows:
            print(
                "{:>8d} {:>14.2f} {:>16.2f} {:>8.2f}x".format(
                    row["actives"],
                    row["scalar_us_per_cycle"],
                    row["vectorized_us_per_cycle"],
                    row["speedup"],
                )
            )
        results["conflict_churn"] = rows

    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=1, sort_keys=True)
        print("\nwrote {}".format(args.json))
    return 0


if __name__ == "__main__":
    sys.exit(main())
