"""Ablation — conservative preclaim vs claim-as-needed 2PL."""

from conftest import bench_scale
from repro.experiments.figures import ablation_protocol


def test_ablation_protocols_reach_same_conclusions(run_exhibit):
    spec = bench_scale(ablation_protocol())
    result = run_exhibit(spec)
    curves = {label: dict(points) for label, points in
              result.series("throughput").items()}
    preclaim = curves["protocol=preclaim"]
    incremental = curves["protocol=incremental"]
    # Footnote 1 of the paper: switching to claim-as-needed does not
    # change the granularity conclusions — both curves share the
    # convex shape and the fine-granularity collapse.
    for curve in (preclaim, incremental):
        assert curve[10] > curve[5000]
    for ltot in preclaim:
        if preclaim[ltot] > 0:
            ratio = incremental[ltot] / preclaim[ltot]
            assert 0.5 < ratio < 2.0, (ltot, ratio)
    # Preclaim is deadlock-free by construction.
    aborts = {label: dict(points) for label, points in
              result.series("deadlock_aborts").items()}
    assert all(v == 0 for v in aborts["protocol=preclaim"].values())
