"""Figure 6 — throughput & response time vs locks x transaction size."""

from conftest import bench_scale
from repro.experiments.figures import figure6


def test_fig6_transaction_size_effects(run_exhibit):
    spec = bench_scale(
        figure6(), replace_sweeps={"maxtransize": (50, 500, 5000)}
    )
    result = run_exhibit(spec)
    curves = result.series("throughput")
    # Smaller transactions give substantially higher throughput.
    for (x_s, y_small), (x_l, y_large) in zip(
        curves["maxtransize=50"], curves["maxtransize=5000"]
    ):
        assert x_s == x_l
        if x_s > 1:  # the serial point can degenerate
            assert y_small > y_large
    # Optimum below 200 locks for every size; curves steeper (larger
    # relative range) for smaller transactions.
    for label, points in curves.items():
        values = dict(points)
        best = max(values, key=values.get)
        assert best <= 200, (label, best)
    # Flatter response times for small transactions.
    responses = result.series("response_time")
    small = dict(responses["maxtransize=50"])
    large = dict(responses["maxtransize=5000"])
    small_spread = max(small.values()) - min(small.values())
    large_spread = max(large.values()) - min(large.values())
    assert small_spread < large_spread
