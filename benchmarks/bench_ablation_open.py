"""Ablation — open-system (Poisson arrival) saturation."""

from conftest import bench_scale
from repro.experiments.figures import ablation_open_system

BENCH_TMAX = 300.0


def test_ablation_open_system_saturation(run_exhibit):
    spec = bench_scale(
        ablation_open_system(), tmax=BENCH_TMAX, ltot_grid=(20, 5000)
    )
    result = run_exhibit(spec, print_fields=("throughput", "mean_blocked"))
    throughput = {label: dict(points) for label, points in
                  result.series("throughput").items()}
    backlog = {label: dict(points) for label, points in
               result.series("mean_blocked").items()}
    good = throughput["ltot=20"]
    fine = throughput["ltot=5000"]
    # Below everyone's knee both track the offered load.
    assert good[0.05] > 0.035
    assert fine[0.05] > 0.03
    # Past the fine-granularity knee: good keeps climbing with the
    # offered load, fine saturates (and its backlog explodes).
    assert good[0.15] > fine[0.15] * 1.5
    assert backlog["ltot=5000"][0.2] > backlog["ltot=20"][0.2]
